package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"
)

func TestErrTooLargeSentinel(t *testing.T) {
	// Read side, both framings: a length prefix over the limit is the
	// distinct ErrTooLarge, not a generic error.
	v1 := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, err := ReadMessage(v1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("v1 err = %v, want ErrTooLarge", err)
	}
	v2 := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff, 1, 1})
	if _, err := (Framer{Version: ProtoV2}).ReadMessage(v2); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("v2 err = %v, want ErrTooLarge", err)
	}
	// Write side: an oversized payload is refused with the same
	// sentinel before anything hits the wire.
	huge := Message{Type: MsgImage, Payload: make([]byte, maxMessage+1)}
	var sink bytes.Buffer
	if err := WriteMessage(&sink, huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("write err = %v, want ErrTooLarge", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("oversized write emitted %d bytes", sink.Len())
	}
}

func TestFramerV2RoundTrip(t *testing.T) {
	fr := Framer{Version: ProtoV2}
	var buf bytes.Buffer
	msgs := []Message{
		{Type: MsgHello, Payload: []byte{1, 1}},
		{Type: MsgImage, Payload: bytes.Repeat([]byte{7}, 1000)},
		{Type: MsgPing, Payload: MarshalPing(42)},
		{Type: MsgBye},
	}
	for _, m := range msgs {
		if err := fr.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := fr.ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

func TestFramerV2DetectsCorruptionAndRealigns(t *testing.T) {
	fr := Framer{Version: ProtoV2}
	var buf bytes.Buffer
	if err := fr.WriteMessage(&buf, Message{Type: MsgImage, Payload: bytes.Repeat([]byte{9}, 64)}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteMessage(&buf, Message{Type: MsgControl, Payload: []byte("intact")}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	wire[6+10] ^= 0xFF // flip a payload byte of the first frame

	r := bytes.NewReader(wire)
	if _, err := fr.ReadMessage(r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	// The stream is still frame-aligned: the next message reads clean.
	got, err := fr.ReadMessage(r)
	if err != nil {
		t.Fatalf("post-corruption read: %v", err)
	}
	if got.Type != MsgControl || string(got.Payload) != "intact" {
		t.Fatalf("post-corruption message mismatch: %+v", got)
	}
}

func TestFramerV2DetectsTypeFlip(t *testing.T) {
	fr := Framer{Version: ProtoV2}
	var buf bytes.Buffer
	if err := fr.WriteMessage(&buf, Message{Type: MsgImage, Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	wire[4] ^= 0xFF // the type byte is covered by the CRC too
	if _, err := fr.ReadMessage(bytes.NewReader(wire)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestNegotiateVersion(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{ProtoV1, ProtoV1, ProtoV1},
		{ProtoV2, ProtoV1, ProtoV1},
		{ProtoV1, ProtoV2, ProtoV1},
		{ProtoV2, ProtoV2, ProtoV2},
		{ProtoV3, ProtoV2, ProtoV2},
		{ProtoV3, ProtoV3, ProtoV3},
		{9, 7, ProtoV3}, // future versions cap at what we speak
	}
	for _, c := range cases {
		if got := NegotiateVersion(c.a, c.b); got != c.want {
			t.Errorf("NegotiateVersion(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestParseHelloLegacyAndV2(t *testing.T) {
	if role, v, err := ParseHello([]byte{byte(RoleDisplay)}); err != nil || role != RoleDisplay || v != ProtoV1 {
		t.Fatalf("legacy hello = (%v,%d,%v)", role, v, err)
	}
	if role, v, err := ParseHello(HelloPayload(RoleRenderer, ProtoV2)); err != nil || role != RoleRenderer || v != ProtoV2 {
		t.Fatalf("v2 hello = (%v,%d,%v)", role, v, err)
	}
	if _, _, err := ParseHello(nil); err == nil {
		t.Fatal("empty hello accepted")
	}
}

func TestEndpointNegotiatesV2(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ep, err := Dial(d.Addr().String(), RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if ep.ProtoVersion() != ProtoV3 {
		t.Fatalf("negotiated v%d, want v%d", ep.ProtoVersion(), ProtoV3)
	}
	health := d.Health()
	if len(health) != 1 || health[0].Proto != ProtoV3 || !health[0].Healthy {
		t.Fatalf("health = %+v", health)
	}
}

// A legacy (v1-only) peer and a v2 peer interoperate through the
// daemon: the image crosses framings.
func TestLegacyPeerInterop(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	view, err := Dial(d.Addr().String(), RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	// Legacy renderer: single-byte hello, v1 framing throughout.
	conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: []byte{byte(RoleRenderer)}}); err != nil {
		t.Fatal(err)
	}
	welcome, err := ReadMessage(conn)
	if err != nil || welcome.Type != MsgHello {
		t.Fatalf("welcome = %+v, %v", welcome, err)
	}
	if _, v, _ := ParseHello(welcome.Payload); v != ProtoV1 {
		t.Fatalf("daemon offered v%d to legacy peer", v)
	}
	im := &ImageMsg{FrameID: 3, PieceCount: 1, X1: 4, Y1: 4, W: 4, H: 4, Codec: "raw", Data: []byte{1, 2}}
	p, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, Message{Type: MsgImage, Payload: p}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-view.Inbox():
		if m.Type != MsgImage {
			t.Fatalf("got type %d", m.Type)
		}
		got, err := UnmarshalImage(m.Payload)
		if err != nil || got.FrameID != 3 {
			t.Fatalf("image = %+v, %v", got, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("image did not cross framings")
	}
}

func TestEndpointPingMeasuresRTT(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ep, err := Dial(d.Addr().String(), RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Ping(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ep.RTT() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if ep.RTT() <= 0 {
		t.Fatal("no pong observed")
	}
}

func TestDaemonEvictsSilentV2Peer(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetHeartbeat(10*time.Millisecond, 40*time.Millisecond)

	// Handshake as v2 by hand, then go silent: no pongs, ever.
	conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: HelloPayload(RoleDisplay, ProtoV2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PeersEvicted.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := d.Stats().PeersEvicted.Load(); got != 1 {
		t.Fatalf("PeersEvicted = %d, want 1", got)
	}
	if d.Stats().PingsSent.Load() == 0 {
		t.Fatal("no heartbeat pings were sent")
	}
	// The evicted connection is actually closed.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

func TestDaemonNeverEvictsLegacyPeer(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetHeartbeat(5*time.Millisecond, 15*time.Millisecond)

	conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Legacy hello: the daemon cannot tell silent-but-healthy from
	// dead, so it must keep the peer.
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: []byte{byte(RoleDisplay)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // many timeouts worth of silence
	if got := d.Stats().PeersEvicted.Load(); got != 0 {
		t.Fatalf("legacy peer evicted (%d)", got)
	}
	h := d.Health()
	if len(h) != 1 || h[0].Proto != ProtoV1 || !h[0].Healthy {
		t.Fatalf("health = %+v", h)
	}
}

func TestEndpointDropsCorruptFramesAndCounts(t *testing.T) {
	// Daemon -> endpoint direction: feed the endpoint a corrupt v2
	// frame by hand and verify it is counted, dropped, and the
	// connection survives.
	srv, cli := net.Pipe()
	defer srv.Close()
	go func() {
		// Daemon side of the handshake.
		ReadMessage(srv)
		WriteMessage(srv, Message{Type: MsgHello, Payload: HelloPayload(RoleDisplay, ProtoV2)})
		fr := Framer{Version: ProtoV2}
		var buf bytes.Buffer
		fr.WriteMessage(&buf, Message{Type: MsgControl, Payload: []byte("bad")})
		wire := buf.Bytes()
		wire[6] ^= 0xFF // corrupt the first payload byte
		srv.Write(wire)
		fr.WriteMessage(srv, Message{Type: MsgControl, Payload: []byte("good")})
		// Drain the endpoint's writes so pings/byes never block.
		for {
			if _, err := fr.ReadMessage(srv); err != nil {
				return
			}
		}
	}()
	ep, err := NewEndpoint(cli, RoleDisplay)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	select {
	case m := <-ep.Inbox():
		if string(m.Payload) != "good" {
			t.Fatalf("delivered %q, want the clean frame", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("clean frame never arrived")
	}
	if got := ep.CorruptDropped(); got != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", got)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{Base: time.Millisecond, Max: 16 * time.Millisecond, Factor: 2, Jitter: -1, MaxAttempts: 8}.withDefaults()
	want := []time.Duration{1, 2, 4, 8, 16, 16}
	for i, w := range want {
		if got := p.delay(i+1, nil); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Jitter is deterministic under a fixed seed and bounded.
	j := RetryPolicy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, MaxAttempts: 8}
	mk := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		var out []time.Duration
		for a := 1; a <= 5; a++ {
			d := j.delay(a, rng)
			base := time.Duration(float64(10*time.Millisecond) * pow(2, a-1))
			if d < base/2 || d > base+base/2 {
				t.Errorf("attempt %d: delay %v outside +/-50%% of %v", a, d, base)
			}
			out = append(out, d)
		}
		return out
	}
	a, b := mk(3), mk(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

func TestSessionGivesUpAfterBoundedAttempts(t *testing.T) {
	var sleeps []time.Duration
	_, err := NewSession(SessionConfig{
		Role: RoleRenderer,
		Dial: func() (net.Conn, error) { return nil, errors.New("refused") },
		Retry: RetryPolicy{Base: time.Millisecond, Max: 8 * time.Millisecond,
			Factor: 2, Jitter: -1, MaxAttempts: 5},
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err == nil {
		t.Fatal("session connected through a dead dialer")
	}
	// Attempt 1 dials immediately; attempts 2..5 back off
	// exponentially up to the cap.
	want := []time.Duration{2, 4, 8, 8}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %d backoffs", sleeps, len(want))
	}
	for i, w := range want {
		if sleeps[i] != w*time.Millisecond {
			t.Errorf("backoff %d = %v, want %v", i, sleeps[i], w*time.Millisecond)
		}
	}
}

func TestSessionSendFailsFastWhileDown(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := d.Addr().String()
	block := make(chan struct{})
	dials := 0
	s, err := NewSession(SessionConfig{
		Role: RoleRenderer,
		Dial: func() (net.Conn, error) {
			dials++
			if dials > 1 {
				<-block // hold reconnection down
			}
			return net.Dial("tcp", addr)
		},
		Retry: RetryPolicy{Base: time.Millisecond, Max: time.Millisecond, Factor: 1, Jitter: -1, MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d.Close() // drop the link
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := s.Send(Message{Type: MsgPing, Payload: MarshalPing(1)}); errors.Is(err, ErrReconnecting) {
			close(block)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(block)
	t.Fatal("Send never returned ErrReconnecting while down")
}

// The proto version header must stay big-endian length-first so v1
// readers reject (rather than misparse) v2 frames; lock the layout.
func TestV2HeaderLayout(t *testing.T) {
	fr := Framer{Version: ProtoV2}
	var buf bytes.Buffer
	if err := fr.WriteMessage(&buf, Message{Type: MsgImage, Payload: []byte{0xAB}}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	if len(wire) != 6+1+4 {
		t.Fatalf("v2 frame length %d, want 11", len(wire))
	}
	if n := binary.BigEndian.Uint32(wire[:4]); n != 1 {
		t.Fatalf("length field = %d", n)
	}
	if wire[4] != byte(MsgImage) || wire[5] != flagCRC {
		t.Fatalf("type/flags = %x %x", wire[4], wire[5])
	}
}

// TestFramerV3TraceRoundTrip: the v3 optional trace block survives a
// write/read cycle intact, and untraced v3 messages omit the block
// entirely (flag clear, no extra bytes).
func TestFramerV3TraceRoundTrip(t *testing.T) {
	fr := Framer{Version: ProtoV3}
	var buf bytes.Buffer
	tc := &TraceCtx{TraceID: 0xDEADBEEFCAFE, FrameID: 1293, Hop: 3, OriginUnixNano: 1_700_000_000_123_456_789}
	msgs := []Message{
		{Type: MsgImage, Payload: bytes.Repeat([]byte{7}, 500), Trace: tc},
		{Type: MsgImage, Payload: []byte{1, 2, 3}}, // untraced rides the same stream
		{Type: MsgAck, Payload: []byte{9}, Trace: &TraceCtx{TraceID: 1, FrameID: 2, Hop: 1}},
	}
	for _, m := range msgs {
		if err := fr.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := fr.ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("msg %d payload mismatch", i)
		}
		if (got.Trace == nil) != (want.Trace == nil) {
			t.Fatalf("msg %d trace presence = %v, want %v", i, got.Trace != nil, want.Trace != nil)
		}
		if want.Trace != nil && *got.Trace != *want.Trace {
			t.Fatalf("msg %d trace = %+v, want %+v", i, got.Trace, want.Trace)
		}
	}
}

// TestFramerV3TraceCoveredByCRC: flipping a bit inside the trace block
// must fail the checksum — the trace is load-bearing routing metadata,
// not an unprotected annex.
func TestFramerV3TraceCoveredByCRC(t *testing.T) {
	fr := Framer{Version: ProtoV3}
	var buf bytes.Buffer
	if err := fr.WriteMessage(&buf, Message{
		Type: MsgImage, Payload: []byte{1, 2, 3},
		Trace: &TraceCtx{TraceID: 5, FrameID: 6, Hop: 1},
	}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	wire[6] ^= 0xFF // first byte of the trace block (after 6-byte header)
	if _, err := (Framer{Version: ProtoV3}).ReadMessage(bytes.NewReader(wire)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted trace read err = %v, want ErrChecksum", err)
	}
}

// TestOlderFramersStripTrace: a message carrying a trace context
// written at v1 or v2 framing loses the trace silently — the exact
// behavior that lets a v3 sender talk to a v2-negotiated peer.
func TestOlderFramersStripTrace(t *testing.T) {
	for _, ver := range []byte{ProtoV1, ProtoV2} {
		fr := Framer{Version: ver}
		var buf bytes.Buffer
		if err := fr.WriteMessage(&buf, Message{
			Type: MsgImage, Payload: []byte{4, 5},
			Trace: &TraceCtx{TraceID: 9, FrameID: 1, Hop: 1},
		}); err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		got, err := fr.ReadMessage(&buf)
		if err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		if got.Trace != nil {
			t.Fatalf("v%d framing leaked a trace context", ver)
		}
		if !bytes.Equal(got.Payload, []byte{4, 5}) {
			t.Fatalf("v%d payload mismatch", ver)
		}
	}
}

// TestDaemonMixedVersionPeers: a v3 renderer with trace contexts and a
// legacy v2 display on the same daemon. The v2 display must receive
// every frame in clean v2 framing (no trace bytes), while a v3 display
// sees the forwarded trace with the hop advanced.
func TestDaemonMixedVersionPeers(t *testing.T) {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// v2 display: raw handshake pinned at ProtoV2.
	v2conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer v2conn.Close()
	if err := WriteMessage(v2conn, Message{Type: MsgHello, Payload: HelloPayload(RoleDisplay, ProtoV2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(v2conn); err != nil {
		t.Fatal(err)
	}
	v2fr := Framer{Version: ProtoV2}

	// v3 display: the normal endpoint path.
	v3disp, err := Dial(d.Addr().String(), RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer v3disp.Close()

	rend, err := Dial(d.Addr().String(), RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	if rend.ProtoVersion() != ProtoV3 {
		t.Fatalf("renderer negotiated v%d, want v%d", rend.ProtoVersion(), ProtoV3)
	}

	payload := bytes.Repeat([]byte{3}, 64)
	if err := rend.Send(Message{
		Type: MsgImage, Payload: payload,
		Trace: &TraceCtx{TraceID: 77, FrameID: 8, Hop: 1, OriginUnixNano: 42},
	}); err != nil {
		t.Fatal(err)
	}

	// The v2 display gets the image, stripped of the trace.
	v2conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := v2fr.ReadMessage(v2conn)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgImage || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("v2 display got type %d, %d bytes", got.Type, len(got.Payload))
	}
	if got.Trace != nil {
		t.Fatal("v2 display received a trace context")
	}

	// The v3 display gets the same image with the hop advanced.
	select {
	case m := <-v3disp.Inbox():
		if m.Type != MsgImage || !bytes.Equal(m.Payload, payload) {
			t.Fatalf("v3 display got type %d, %d bytes", m.Type, len(m.Payload))
		}
		if m.Trace == nil {
			t.Fatal("v3 display lost the trace context")
		}
		if m.Trace.TraceID != 77 || m.Trace.FrameID != 8 || m.Trace.Hop != 2 || m.Trace.OriginUnixNano != 42 {
			t.Fatalf("forwarded trace = %+v, want id 77 frame 8 hop 2 origin 42", m.Trace)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("v3 display never received the frame")
	}
}

// TestV3HeaderLayout locks the traced-frame wire layout: 6-byte v2
// header, flagTrace set, 21-byte trace block big-endian, then payload
// and CRC trailer.
func TestV3HeaderLayout(t *testing.T) {
	fr := Framer{Version: ProtoV3}
	var buf bytes.Buffer
	err := fr.WriteMessage(&buf, Message{
		Type: MsgImage, Payload: []byte{0xAB},
		Trace: &TraceCtx{TraceID: 0x0102030405060708, FrameID: 0x0A0B0C0D, Hop: 2, OriginUnixNano: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	if len(wire) != 6+21+1+4 {
		t.Fatalf("traced v3 frame length %d, want 32", len(wire))
	}
	if n := binary.BigEndian.Uint32(wire[:4]); n != 1 {
		t.Fatalf("length field = %d, want payload-only 1", n)
	}
	if wire[5] != flagCRC|flagTrace {
		t.Fatalf("flags = %x, want CRC|trace", wire[5])
	}
	if id := binary.BigEndian.Uint64(wire[6:14]); id != 0x0102030405060708 {
		t.Fatalf("trace id on wire = %x", id)
	}
	if f := binary.BigEndian.Uint32(wire[14:18]); f != 0x0A0B0C0D {
		t.Fatalf("frame id on wire = %x", f)
	}
	if wire[18] != 2 {
		t.Fatalf("hop on wire = %d", wire[18])
	}
}
