package transport

import (
	"fmt"
	"net"
	"sync"
)

// Endpoint is one side's connection to the display daemon: the
// renderer interface (role renderer) or the display interface (role
// display). It serializes writes and delivers inbound messages on a
// channel.
type Endpoint struct {
	conn net.Conn
	role Role

	wmu sync.Mutex

	inbox chan Message
	done  chan struct{}
	once  sync.Once

	emu     sync.Mutex
	readErr error
}

// Dial connects to the daemon at addr with the given role, optionally
// wrapping the socket (e.g. with a wan.Shape) via wrap (nil = raw).
func Dial(addr string, role Role, wrap func(net.Conn) net.Conn) (*Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	return NewEndpoint(conn, role)
}

// NewEndpoint performs the handshake on an existing connection: it
// announces the role and waits for the daemon's welcome, so a
// successfully returned endpoint is fully registered.
func NewEndpoint(conn net.Conn, role Role) (*Endpoint, error) {
	e := &Endpoint{conn: conn, role: role, inbox: make(chan Message, 64), done: make(chan struct{})}
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: []byte{byte(role)}}); err != nil {
		conn.Close()
		return nil, err
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake rejected: %w", err)
	}
	if welcome.Type != MsgHello {
		conn.Close()
		return nil, fmt.Errorf("transport: unexpected handshake reply type %d", welcome.Type)
	}
	go e.readLoop()
	return e, nil
}

func (e *Endpoint) readLoop() {
	for {
		m, err := ReadMessage(e.conn)
		if err != nil {
			e.emu.Lock()
			e.readErr = err
			e.emu.Unlock()
			close(e.inbox)
			return
		}
		// Selecting on done keeps the loop from blocking forever on a
		// full inbox nobody drains after Close (goroutine leak).
		select {
		case e.inbox <- m:
		case <-e.done:
			close(e.inbox)
			return
		}
	}
}

// Inbox delivers messages from the daemon; it closes when the
// connection drops.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Err returns the read error that ended the inbox (nil while open or
// after a clean close).
func (e *Endpoint) Err() error {
	e.emu.Lock()
	defer e.emu.Unlock()
	return e.readErr
}

// Send writes a message to the daemon; safe for concurrent use.
func (e *Endpoint) Send(m Message) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return WriteMessage(e.conn, m)
}

// SendImage marshals and sends an image piece.
func (e *Endpoint) SendImage(im *ImageMsg) error {
	p, err := im.Marshal()
	if err != nil {
		return err
	}
	return e.Send(Message{Type: MsgImage, Payload: p})
}

// SendControl marshals and sends a control message.
func (e *Endpoint) SendControl(c *ControlMsg) error {
	p, err := c.Marshal()
	if err != nil {
		return err
	}
	return e.Send(Message{Type: MsgControl, Payload: p})
}

// Close sends a best-effort Bye and closes the socket.
func (e *Endpoint) Close() error {
	var err error
	e.once.Do(func() {
		_ = e.Send(Message{Type: MsgBye})
		close(e.done)
		err = e.conn.Close()
	})
	return err
}
