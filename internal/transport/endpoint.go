package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Link is the endpoint surface the renderer and display interfaces
// program against: a plain Endpoint (one connection, dies with it) or
// a Session (auto-reconnecting) both implement it.
type Link interface {
	// Inbox delivers messages from the daemon.
	Inbox() <-chan Message
	// Send writes a message to the daemon; safe for concurrent use.
	Send(Message) error
	// SendImage marshals and sends an image piece.
	SendImage(*ImageMsg) error
	// SendControl marshals and sends a control message.
	SendControl(*ControlMsg) error
	// Err reports the error that ended the link (nil while healthy).
	Err() error
	// Close shuts the link down.
	Close() error
}

// Endpoint is one side's connection to the display daemon: the
// renderer interface (role renderer) or the display interface (role
// display). It serializes writes and delivers inbound messages on a
// channel. Liveness probes (MsgPing) from the peer are answered
// automatically; corrupt CRC-checked frames are counted and dropped
// without surfacing on the inbox.
type Endpoint struct {
	conn net.Conn
	role Role
	fr   Framer

	wmu sync.Mutex

	inbox chan Message
	done  chan struct{}
	once  sync.Once

	emu     sync.Mutex
	readErr error

	// lastRecv is the wall-clock nanos of the most recent inbound
	// message (any type) — the signal heartbeat monitors watch.
	lastRecv atomic.Int64
	// rttNS is the round-trip observed by the most recent pong.
	rttNS atomic.Int64
	// corrupt counts CRC-failed frames dropped by the read loop.
	corrupt atomic.Int64
}

// ErrBusy is the sentinel for admission-control rejections: the
// daemon answered the handshake with MsgBusy instead of a welcome.
// Match with errors.Is; the full *BusyError (retry-after hint,
// reason) is recoverable with errors.As.
var ErrBusy = errors.New("transport: daemon busy")

// BusyError is a handshake rejected by admission control.
type BusyError struct {
	// RetryAfter is the daemon's hint for when to try again.
	RetryAfter time.Duration
	// Reason is the daemon's short rejection cause.
	Reason string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("transport: daemon busy (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrBusy) match.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// Dial connects to the daemon at addr with the given role, optionally
// wrapping the socket (e.g. with a wan.Shape) via wrap (nil = raw).
func Dial(addr string, role Role, wrap func(net.Conn) net.Conn) (*Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	return NewEndpoint(conn, role)
}

// NewEndpoint performs the handshake on an existing connection: it
// announces the role plus the protocol versions it speaks and waits
// for the daemon's welcome, so a successfully returned endpoint is
// fully registered and knows the negotiated wire version. Hellos and
// welcomes always travel in legacy framing; the negotiated version
// applies from the first message after them.
func NewEndpoint(conn net.Conn, role Role) (*Endpoint, error) {
	return NewEndpointKind(conn, role, KindViewer)
}

// NewEndpointKind is NewEndpoint with an explicit client kind: relays
// announce KindRelay so the daemon's admission control can prioritize
// them over individual viewers. An over-budget daemon answers with
// MsgBusy; the returned error then matches ErrBusy and carries the
// retry-after hint as a *BusyError.
func NewEndpointKind(conn net.Conn, role Role, kind byte) (*Endpoint, error) {
	e := &Endpoint{conn: conn, role: role, inbox: make(chan Message, 64), done: make(chan struct{})}
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: HelloPayloadKind(role, ProtoV3, kind)}); err != nil {
		conn.Close()
		return nil, err
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake rejected: %w", err)
	}
	if welcome.Type == MsgBusy {
		conn.Close()
		retry, reason, perr := UnmarshalBusy(welcome.Payload)
		if perr != nil {
			reason = "overloaded"
		}
		return nil, &BusyError{RetryAfter: retry, Reason: reason}
	}
	if welcome.Type != MsgHello {
		conn.Close()
		return nil, fmt.Errorf("transport: unexpected handshake reply type %d", welcome.Type)
	}
	if _, v, err := ParseHello(welcome.Payload); err == nil {
		e.fr = Framer{Version: NegotiateVersion(ProtoV3, v)}
	}
	e.lastRecv.Store(time.Now().UnixNano())
	go e.readLoop()
	return e, nil
}

// ProtoVersion returns the negotiated wire version.
func (e *Endpoint) ProtoVersion() byte { return e.fr.Version }

// CorruptDropped reports CRC-failed frames dropped by the read loop.
func (e *Endpoint) CorruptDropped() int64 { return e.corrupt.Load() }

// LastRecv returns the time of the most recent inbound message.
func (e *Endpoint) LastRecv() time.Time { return time.Unix(0, e.lastRecv.Load()) }

// RTT returns the round-trip observed by the most recent answered
// ping (zero before the first pong).
func (e *Endpoint) RTT() time.Duration { return time.Duration(e.rttNS.Load()) }

// Ping sends a liveness probe carrying the current clock; the RTT
// becomes observable via RTT when the pong returns.
func (e *Endpoint) Ping() error {
	return e.Send(Message{Type: MsgPing, Payload: MarshalPing(time.Now().UnixNano())})
}

func (e *Endpoint) readLoop() {
	for {
		m, err := e.fr.ReadMessage(e.conn)
		if err != nil {
			// A checksum failure leaves the stream aligned on the next
			// frame: drop the corrupt message and keep reading rather
			// than killing a healthy connection over one flipped bit.
			if errors.Is(err, ErrChecksum) {
				e.corrupt.Add(1)
				continue
			}
			e.emu.Lock()
			e.readErr = err
			e.emu.Unlock()
			close(e.inbox)
			return
		}
		e.lastRecv.Store(time.Now().UnixNano())
		switch m.Type {
		case MsgPing:
			// Liveness probe: answer on the endpoint's clock, echoing
			// the payload; never delivered to the inbox.
			_ = e.Send(Message{Type: MsgPong, Payload: m.Payload})
			continue
		case MsgPong:
			if sent, err := UnmarshalPing(m.Payload); err == nil {
				e.rttNS.Store(time.Now().UnixNano() - sent)
			}
			continue
		}
		// Selecting on done keeps the loop from blocking forever on a
		// full inbox nobody drains after Close (goroutine leak).
		select {
		case e.inbox <- m:
		case <-e.done:
			close(e.inbox)
			return
		}
	}
}

// Inbox delivers messages from the daemon; it closes when the
// connection drops.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Err returns the read error that ended the inbox (nil while open or
// after a clean close).
func (e *Endpoint) Err() error {
	e.emu.Lock()
	defer e.emu.Unlock()
	return e.readErr
}

// Send writes a message to the daemon; safe for concurrent use.
func (e *Endpoint) Send(m Message) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.fr.WriteMessage(e.conn, m)
}

// SendImage marshals and sends an image piece.
func (e *Endpoint) SendImage(im *ImageMsg) error {
	p, err := im.Marshal()
	if err != nil {
		return err
	}
	return e.Send(Message{Type: MsgImage, Payload: p})
}

// SendControl marshals and sends a control message.
func (e *Endpoint) SendControl(c *ControlMsg) error {
	p, err := c.Marshal()
	if err != nil {
		return err
	}
	return e.Send(Message{Type: MsgControl, Payload: p})
}

// Close sends a best-effort Bye and closes the socket.
func (e *Endpoint) Close() error {
	var err error
	e.once.Do(func() {
		_ = e.Send(Message{Type: MsgBye})
		close(e.done)
		err = e.conn.Close()
	})
	return err
}
