// Package transport implements the paper's image-transport framework:
// a length-prefixed tagged-message wire protocol, the display daemon
// that relays images from render nodes to display clients and control
// messages ("remote callbacks") back, and the renderer/display
// interface endpoints.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Role identifies an endpoint at handshake.
type Role byte

// Endpoint roles.
const (
	RoleRenderer Role = 1
	RoleDisplay  Role = 2
)

func (r Role) String() string {
	switch r {
	case RoleRenderer:
		return "renderer"
	case RoleDisplay:
		return "display"
	}
	return fmt.Sprintf("role(%d)", byte(r))
}

// MsgType tags a wire message.
type MsgType byte

// Wire message types.
const (
	// MsgHello opens a connection: payload is [role byte].
	MsgHello MsgType = 1
	// MsgImage carries one (piece of a) rendered frame.
	MsgImage MsgType = 2
	// MsgControl carries a tagged user-control message toward the
	// renderers.
	MsgControl MsgType = 3
	// MsgBye announces a clean shutdown of the peer.
	MsgBye MsgType = 4
	// MsgAck is a display's receive report for one frame: the feedback
	// signal the adaptive streaming layer uses to estimate RTT.
	MsgAck MsgType = 5
	// MsgAdvertise is a renderer's announcement of the codec families
	// it can produce (comma-separated names); the stream broker
	// restricts its quality ladder to advertised codecs.
	MsgAdvertise MsgType = 6
)

// maxMessage bounds a wire message to keep a corrupt length prefix
// from exhausting memory (64 MiB fits a raw 2048^2 frame with room).
const maxMessage = 64 << 20

// Message is one framed unit.
type Message struct {
	Type    MsgType
	Payload []byte
}

// WriteMessage frames and writes a message.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Payload) > maxMessage {
		return fmt.Errorf("transport: message of %d bytes exceeds limit", len(m.Payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(m.Payload)))
	hdr[4] = byte(m.Type)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxMessage {
		return Message{}, fmt.Errorf("transport: message length %d exceeds limit", n)
	}
	m := Message{Type: MsgType(hdr[4]), Payload: make([]byte, n)}
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		return Message{}, err
	}
	return m, nil
}

// ImageMsg is the payload of MsgImage: one compressed piece of a
// frame. A full frame is PieceCount pieces covering [0,W)x[0,H);
// single-piece frames have PieceCount 1.
type ImageMsg struct {
	// FrameID is the time step / sequence number.
	FrameID uint32
	// PieceIndex and PieceCount describe parallel-compression pieces.
	PieceIndex uint16
	PieceCount uint16
	// X0, Y0, X1, Y1 is the piece's region in the full frame.
	X0, Y0, X1, Y1 uint16
	// W, H are the full-frame dimensions.
	W, H uint16
	// Codec names the compression used for Data.
	Codec string
	// Data is the codec output for this piece.
	Data []byte
}

// ErrTruncated reports a structurally short payload.
var ErrTruncated = errors.New("transport: truncated payload")

// Marshal serializes the image message.
func (m *ImageMsg) Marshal() ([]byte, error) {
	if len(m.Codec) > 255 {
		return nil, fmt.Errorf("transport: codec name too long")
	}
	out := make([]byte, 0, 21+len(m.Codec)+len(m.Data))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], m.FrameID)
	out = append(out, b[:]...)
	for _, v := range []uint16{m.PieceIndex, m.PieceCount, m.X0, m.Y0, m.X1, m.Y1, m.W, m.H} {
		binary.BigEndian.PutUint16(b[:2], v)
		out = append(out, b[:2]...)
	}
	out = append(out, byte(len(m.Codec)))
	out = append(out, m.Codec...)
	return append(out, m.Data...), nil
}

// UnmarshalImage parses an ImageMsg payload.
func UnmarshalImage(p []byte) (*ImageMsg, error) {
	if len(p) < 21 {
		return nil, ErrTruncated
	}
	m := &ImageMsg{FrameID: binary.BigEndian.Uint32(p)}
	vals := []*uint16{&m.PieceIndex, &m.PieceCount, &m.X0, &m.Y0, &m.X1, &m.Y1, &m.W, &m.H}
	off := 4
	for _, v := range vals {
		*v = binary.BigEndian.Uint16(p[off:])
		off += 2
	}
	nameLen := int(p[off])
	off++
	if len(p) < off+nameLen {
		return nil, ErrTruncated
	}
	m.Codec = string(p[off : off+nameLen])
	m.Data = p[off+nameLen:]
	if m.PieceCount == 0 {
		return nil, fmt.Errorf("transport: piece count 0")
	}
	if m.PieceIndex >= m.PieceCount {
		return nil, fmt.Errorf("transport: piece %d of %d", m.PieceIndex, m.PieceCount)
	}
	if m.X1 <= m.X0 || m.Y1 <= m.Y0 || m.X1 > m.W || m.Y1 > m.H {
		return nil, fmt.Errorf("transport: bad region [%d,%d)x[%d,%d) in %dx%d", m.X0, m.X1, m.Y0, m.Y1, m.W, m.H)
	}
	return m, nil
}

// AckMsg is the payload of MsgAck: the display's receive timestamp for
// one completed frame. The broker subtracts its own send timestamp to
// observe the effective round-trip of the feedback loop.
type AckMsg struct {
	// FrameID identifies the acknowledged frame.
	FrameID uint32
	// RecvUnixNano is the display's clock when the frame completed.
	RecvUnixNano int64
	// Bytes is the compressed payload size the display counted.
	Bytes uint32
}

// Marshal serializes the ack.
func (m *AckMsg) Marshal() []byte {
	out := make([]byte, 16)
	binary.BigEndian.PutUint32(out, m.FrameID)
	binary.BigEndian.PutUint64(out[4:], uint64(m.RecvUnixNano))
	binary.BigEndian.PutUint32(out[12:], m.Bytes)
	return out
}

// UnmarshalAck parses an AckMsg payload.
func UnmarshalAck(p []byte) (*AckMsg, error) {
	if len(p) < 16 {
		return nil, ErrTruncated
	}
	return &AckMsg{
		FrameID:      binary.BigEndian.Uint32(p),
		RecvUnixNano: int64(binary.BigEndian.Uint64(p[4:])),
		Bytes:        binary.BigEndian.Uint32(p[12:]),
	}, nil
}

// MarshalAdvertise serializes a codec-family advertisement.
func MarshalAdvertise(names []string) []byte {
	return []byte(strings.Join(names, ","))
}

// UnmarshalAdvertise parses an advertisement payload.
func UnmarshalAdvertise(p []byte) []string {
	if len(p) == 0 {
		return nil
	}
	return strings.Split(string(p), ",")
}

// ControlMsg is the payload of MsgControl: a tagged message passed
// through the daemon to every renderer interface as a remote callback.
type ControlMsg struct {
	// Tag names the callback ("view", "colormap", "codec", "start",
	// "stop", ...).
	Tag string
	// Data is the tag-specific payload.
	Data []byte
}

// Marshal serializes the control message.
func (m *ControlMsg) Marshal() ([]byte, error) {
	if len(m.Tag) > 255 {
		return nil, fmt.Errorf("transport: control tag too long")
	}
	out := make([]byte, 0, 1+len(m.Tag)+len(m.Data))
	out = append(out, byte(len(m.Tag)))
	out = append(out, m.Tag...)
	return append(out, m.Data...), nil
}

// UnmarshalControl parses a ControlMsg payload.
func UnmarshalControl(p []byte) (*ControlMsg, error) {
	if len(p) < 1 {
		return nil, ErrTruncated
	}
	n := int(p[0])
	if len(p) < 1+n {
		return nil, ErrTruncated
	}
	return &ControlMsg{Tag: string(p[1 : 1+n]), Data: p[1+n:]}, nil
}
