// Package transport implements the paper's image-transport framework:
// a length-prefixed tagged-message wire protocol, the display daemon
// that relays images from render nodes to display clients and control
// messages ("remote callbacks") back, and the renderer/display
// interface endpoints.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"time"
)

// Role identifies an endpoint at handshake.
type Role byte

// Endpoint roles.
const (
	RoleRenderer Role = 1
	RoleDisplay  Role = 2
)

func (r Role) String() string {
	switch r {
	case RoleRenderer:
		return "renderer"
	case RoleDisplay:
		return "display"
	}
	return fmt.Sprintf("role(%d)", byte(r))
}

// MsgType tags a wire message.
type MsgType byte

// Wire message types.
const (
	// MsgHello opens a connection: payload is [role byte].
	MsgHello MsgType = 1
	// MsgImage carries one (piece of a) rendered frame.
	MsgImage MsgType = 2
	// MsgControl carries a tagged user-control message toward the
	// renderers.
	MsgControl MsgType = 3
	// MsgBye announces a clean shutdown of the peer.
	MsgBye MsgType = 4
	// MsgAck is a display's receive report for one frame: the feedback
	// signal the adaptive streaming layer uses to estimate RTT.
	MsgAck MsgType = 5
	// MsgAdvertise is a renderer's announcement of the codec families
	// it can produce (comma-separated names); the stream broker
	// restricts its quality ladder to advertised codecs.
	MsgAdvertise MsgType = 6
	// MsgPing is a liveness probe: payload is the sender's 8-byte
	// send timestamp (nanoseconds, opaque to the receiver). Endpoints
	// and daemons answer with MsgPong echoing the payload.
	MsgPing MsgType = 7
	// MsgPong answers a ping, echoing the ping payload so the sender
	// can compute the round-trip time on its own clock.
	MsgPong MsgType = 8
	// MsgBusy rejects a handshake: the daemon is over its admission
	// budget and the client should retry after the hinted delay
	// instead of being accepted and starving the admitted sessions.
	// Payload: 4-byte retry-after in milliseconds plus a reason
	// string. Sent in place of the welcome hello, in legacy framing.
	MsgBusy MsgType = 9
)

// Client kinds, carried in an optional third hello byte so admission
// control can prioritize relays (which serve whole subtrees) over
// individual viewers. Absent byte = KindViewer, so legacy hellos are
// plain viewers.
const (
	// KindViewer is an individual display client.
	KindViewer byte = 0
	// KindRelay is a relay daemon's upstream connection.
	KindRelay byte = 1
)

// Wire protocol versions, negotiated at handshake. A hello (and the
// daemon's welcome reply) may carry a second payload byte naming the
// highest version the sender speaks; both sides then use the minimum.
// Legacy single-byte hellos negotiate ProtoV1, so old and new
// binaries interoperate in either direction.
const (
	// ProtoV1 is the legacy framing: 5-byte header (length, type), no
	// integrity check.
	ProtoV1 byte = 0
	// ProtoV2 adds a flags byte to the header and a CRC32 (IEEE)
	// trailer over type+flags+payload, so corrupted frames are
	// detected and dropped instead of displayed.
	ProtoV2 byte = 1
	// ProtoV3 adds an optional trace-context block (flagTrace) between
	// header and payload: trace ID, frame ID, hop ordinal and origin
	// timestamp, so every process a frame crosses can log provenance
	// events against a shared identity. V2 peers never see the block —
	// a v3 framer only emits it on v3-negotiated links, so tracing and
	// non-tracing peers interoperate.
	ProtoV3 byte = 2
)

// v2+ header flag bits.
const (
	flagCRC   byte = 1 << 0
	flagTrace byte = 1 << 1
)

// traceCtxSize is the wire size of a TraceCtx block.
const traceCtxSize = 21

// TraceCtx is the compact per-frame trace context carried in v3
// framing: enough identity to correlate provenance events recorded by
// every process the frame crosses, cheap enough to ride every image
// message.
type TraceCtx struct {
	// TraceID identifies the originating stream (one render session);
	// random per origin process.
	TraceID uint64
	// FrameID is the frame sequence number within the trace.
	FrameID uint32
	// Hop counts forwarding steps from the origin (renderer = 0); each
	// re-forwarder increments it.
	Hop uint8
	// OriginUnixNano is the origin's wall clock when the frame left the
	// renderer, used for end-to-end frame-age budgets.
	OriginUnixNano int64
}

// appendTo serializes the trace context.
func (t *TraceCtx) appendTo(out []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], t.TraceID)
	out = append(out, b[:]...)
	binary.BigEndian.PutUint32(b[:4], t.FrameID)
	out = append(out, b[:4]...)
	out = append(out, t.Hop)
	binary.BigEndian.PutUint64(b[:], uint64(t.OriginUnixNano))
	return append(out, b[:]...)
}

// parseTraceCtx deserializes a trace-context block.
func parseTraceCtx(p []byte) (*TraceCtx, error) {
	if len(p) < traceCtxSize {
		return nil, ErrTruncated
	}
	return &TraceCtx{
		TraceID:        binary.BigEndian.Uint64(p),
		FrameID:        binary.BigEndian.Uint32(p[8:]),
		Hop:            p[12],
		OriginUnixNano: int64(binary.BigEndian.Uint64(p[13:])),
	}, nil
}

// maxMessage bounds a wire message to keep a corrupt length prefix
// from exhausting memory (64 MiB fits a raw 2048^2 frame with room).
const maxMessage = 64 << 20

// ErrTooLarge reports a length prefix beyond the wire limit — either
// a legitimately oversized frame on the write side or, on the read
// side, a corrupted length field. Callers distinguish it from other
// read errors with errors.Is.
var ErrTooLarge = errors.New("transport: message exceeds size limit")

// ErrChecksum reports a v2 frame whose CRC32 trailer does not match
// its contents. The stream position is past the frame when it is
// returned, so callers may drop the message and keep reading.
var ErrChecksum = errors.New("transport: message checksum mismatch")

// Message is one framed unit.
type Message struct {
	Type    MsgType
	Payload []byte
	// Trace is the optional provenance context. It is carried on the
	// wire only at ProtoV3; lower-version framers silently strip it, so
	// tracing peers interoperate with v2/v1 peers (frames flow, the
	// trace just ends at the downgrade boundary).
	Trace *TraceCtx
}

// WriteMessage frames and writes a message in legacy (v1) framing.
func WriteMessage(w io.Writer, m Message) error {
	return Framer{}.WriteMessage(w, m)
}

// ReadMessage reads one legacy (v1) framed message.
func ReadMessage(r io.Reader) (Message, error) {
	return Framer{}.ReadMessage(r)
}

// Framer frames messages at a negotiated protocol version. The zero
// value speaks ProtoV1 (the legacy 5-byte header); a ProtoV2 framer
// adds a flags byte and a CRC32 integrity trailer; a ProtoV3 framer
// may additionally carry a trace-context block. A Framer is set once
// at handshake and is safe for concurrent use afterwards.
type Framer struct {
	// Version is the negotiated wire version (ProtoV1..ProtoV3).
	Version byte
}

// WriteMessage frames and writes one message. A Trace on the message
// is written only at ProtoV3 — lower versions strip it, keeping the
// stream legible to pre-trace peers.
func (f Framer) WriteMessage(w io.Writer, m Message) error {
	if len(m.Payload) > maxMessage {
		return fmt.Errorf("transport: message of %d bytes: %w", len(m.Payload), ErrTooLarge)
	}
	if f.Version < ProtoV2 {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(m.Payload)))
		hdr[4] = byte(m.Type)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(m.Payload)
		return err
	}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(m.Payload)))
	hdr[4] = byte(m.Type)
	hdr[5] = flagCRC
	var trace []byte
	if f.Version >= ProtoV3 && m.Trace != nil {
		hdr[5] |= flagTrace
		var buf [traceCtxSize]byte
		trace = m.Trace.appendTo(buf[:0])
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:6])
	crc.Write(trace)
	crc.Write(m.Payload)
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(trace) > 0 {
		if _, err := w.Write(trace); err != nil {
			return err
		}
	}
	if _, err := w.Write(m.Payload); err != nil {
		return err
	}
	_, err := w.Write(trailer[:])
	return err
}

// ReadMessage reads one framed message. At ProtoV2 it verifies the
// CRC32 trailer and returns ErrChecksum (with the stream advanced
// past the frame) on mismatch, so callers can drop the corrupt frame
// and continue; ErrTooLarge reports a length prefix over the limit,
// which on a CRC-checked stream usually means a corrupted header and
// is unrecoverable without a reconnect.
func (f Framer) ReadMessage(r io.Reader) (Message, error) {
	if f.Version < ProtoV2 {
		var hdr [5]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return Message{}, err
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		if n > maxMessage {
			return Message{}, fmt.Errorf("transport: message length %d: %w", n, ErrTooLarge)
		}
		m := Message{Type: MsgType(hdr[4]), Payload: make([]byte, n)}
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return Message{}, err
		}
		return m, nil
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxMessage {
		return Message{}, fmt.Errorf("transport: message length %d: %w", n, ErrTooLarge)
	}
	extra := uint32(0)
	if hdr[5]&flagTrace != 0 {
		extra = traceCtxSize
	}
	body := make([]byte, extra+n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	trace, payload, trailer := body[:extra], body[extra:extra+n], body[extra+n:]
	if hdr[5]&flagCRC != 0 {
		crc := crc32.NewIEEE()
		crc.Write(hdr[4:6])
		crc.Write(trace)
		crc.Write(payload)
		if got, want := crc.Sum32(), binary.BigEndian.Uint32(trailer); got != want {
			return Message{}, fmt.Errorf("transport: crc %08x != %08x: %w", got, want, ErrChecksum)
		}
	}
	m := Message{Type: MsgType(hdr[4]), Payload: payload}
	if len(trace) > 0 {
		tc, err := parseTraceCtx(trace)
		if err != nil {
			return Message{}, err
		}
		m.Trace = tc
	}
	return m, nil
}

// HelloPayload builds a hello (or welcome) payload advertising a role
// and the highest protocol version the sender speaks.
func HelloPayload(role Role, version byte) []byte {
	return []byte{byte(role), version}
}

// HelloPayloadKind builds a hello payload that additionally announces
// the client kind (KindViewer, KindRelay). KindViewer omits the byte,
// matching what pre-kind peers send.
func HelloPayloadKind(role Role, version, kind byte) []byte {
	if kind == KindViewer {
		return HelloPayload(role, version)
	}
	return []byte{byte(role), version, kind}
}

// ParseHello extracts the role and advertised protocol version from a
// hello payload. Legacy single-byte payloads advertise ProtoV1.
func ParseHello(p []byte) (Role, byte, error) {
	if len(p) < 1 {
		return 0, 0, fmt.Errorf("transport: empty hello: %w", ErrTruncated)
	}
	v := ProtoV1
	if len(p) >= 2 {
		v = p[1]
	}
	return Role(p[0]), v, nil
}

// ParseHelloKind additionally extracts the client kind; hellos without
// the third byte are KindViewer.
func ParseHelloKind(p []byte) (Role, byte, byte, error) {
	role, v, err := ParseHello(p)
	if err != nil {
		return 0, 0, 0, err
	}
	kind := KindViewer
	if len(p) >= 3 {
		kind = p[2]
	}
	return role, v, kind, nil
}

// MarshalBusy builds a MsgBusy payload from a retry-after hint and a
// short reason.
func MarshalBusy(retryAfter time.Duration, reason string) []byte {
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	out := make([]byte, 4, 4+len(reason))
	binary.BigEndian.PutUint32(out, uint32(ms))
	return append(out, reason...)
}

// UnmarshalBusy parses a MsgBusy payload.
func UnmarshalBusy(p []byte) (retryAfter time.Duration, reason string, err error) {
	if len(p) < 4 {
		return 0, "", ErrTruncated
	}
	return time.Duration(binary.BigEndian.Uint32(p)) * time.Millisecond, string(p[4:]), nil
}

// NegotiateVersion returns the wire version two peers settle on: the
// lower of the two advertisements, capped at ProtoV3.
func NegotiateVersion(a, b byte) byte {
	v := a
	if b < v {
		v = b
	}
	if v > ProtoV3 {
		v = ProtoV3
	}
	return v
}

// MarshalPing builds a ping (or pong) payload from a sender-clock
// timestamp in nanoseconds.
func MarshalPing(nanos int64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(nanos))
	return out
}

// UnmarshalPing recovers the sender timestamp from a ping/pong
// payload.
func UnmarshalPing(p []byte) (int64, error) {
	if len(p) < 8 {
		return 0, ErrTruncated
	}
	return int64(binary.BigEndian.Uint64(p)), nil
}

// ImageMsg is the payload of MsgImage: one compressed piece of a
// frame. A full frame is PieceCount pieces covering [0,W)x[0,H);
// single-piece frames have PieceCount 1.
type ImageMsg struct {
	// FrameID is the time step / sequence number.
	FrameID uint32
	// PieceIndex and PieceCount describe parallel-compression pieces.
	PieceIndex uint16
	PieceCount uint16
	// X0, Y0, X1, Y1 is the piece's region in the full frame.
	X0, Y0, X1, Y1 uint16
	// W, H are the full-frame dimensions.
	W, H uint16
	// Codec names the compression used for Data.
	Codec string
	// Data is the codec output for this piece.
	Data []byte
}

// ErrTruncated reports a structurally short payload.
var ErrTruncated = errors.New("transport: truncated payload")

// Marshal serializes the image message.
func (m *ImageMsg) Marshal() ([]byte, error) {
	return m.AppendTo(make([]byte, 0, 21+len(m.Codec)+len(m.Data)))
}

// AppendTo serializes the image message into out's spare capacity,
// growing it as needed, and returns the extended slice. Senders on a
// per-frame hot path keep one scratch buffer and pass it back with
// out[:0] each frame, making the marshal allocation-free at steady
// state.
func (m *ImageMsg) AppendTo(out []byte) ([]byte, error) {
	if len(m.Codec) > 255 {
		return nil, fmt.Errorf("transport: codec name too long")
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], m.FrameID)
	out = append(out, b[:]...)
	for _, v := range []uint16{m.PieceIndex, m.PieceCount, m.X0, m.Y0, m.X1, m.Y1, m.W, m.H} {
		binary.BigEndian.PutUint16(b[:2], v)
		out = append(out, b[:2]...)
	}
	out = append(out, byte(len(m.Codec)))
	out = append(out, m.Codec...)
	return append(out, m.Data...), nil
}

// UnmarshalImage parses an ImageMsg payload.
func UnmarshalImage(p []byte) (*ImageMsg, error) {
	if len(p) < 21 {
		return nil, ErrTruncated
	}
	m := &ImageMsg{FrameID: binary.BigEndian.Uint32(p)}
	vals := []*uint16{&m.PieceIndex, &m.PieceCount, &m.X0, &m.Y0, &m.X1, &m.Y1, &m.W, &m.H}
	off := 4
	for _, v := range vals {
		*v = binary.BigEndian.Uint16(p[off:])
		off += 2
	}
	nameLen := int(p[off])
	off++
	if len(p) < off+nameLen {
		return nil, ErrTruncated
	}
	m.Codec = string(p[off : off+nameLen])
	m.Data = p[off+nameLen:]
	if m.PieceCount == 0 {
		return nil, fmt.Errorf("transport: piece count 0")
	}
	if m.PieceIndex >= m.PieceCount {
		return nil, fmt.Errorf("transport: piece %d of %d", m.PieceIndex, m.PieceCount)
	}
	if m.X1 <= m.X0 || m.Y1 <= m.Y0 || m.X1 > m.W || m.Y1 > m.H {
		return nil, fmt.Errorf("transport: bad region [%d,%d)x[%d,%d) in %dx%d", m.X0, m.X1, m.Y0, m.Y1, m.W, m.H)
	}
	return m, nil
}

// AckMsg is the payload of MsgAck: the display's receive timestamp for
// one completed frame. The broker subtracts its own send timestamp to
// observe the effective round-trip of the feedback loop.
type AckMsg struct {
	// FrameID identifies the acknowledged frame.
	FrameID uint32
	// RecvUnixNano is the display's clock when the frame completed.
	RecvUnixNano int64
	// Bytes is the compressed payload size the display counted.
	Bytes uint32
}

// Marshal serializes the ack.
func (m *AckMsg) Marshal() []byte {
	out := make([]byte, 16)
	binary.BigEndian.PutUint32(out, m.FrameID)
	binary.BigEndian.PutUint64(out[4:], uint64(m.RecvUnixNano))
	binary.BigEndian.PutUint32(out[12:], m.Bytes)
	return out
}

// UnmarshalAck parses an AckMsg payload.
func UnmarshalAck(p []byte) (*AckMsg, error) {
	if len(p) < 16 {
		return nil, ErrTruncated
	}
	return &AckMsg{
		FrameID:      binary.BigEndian.Uint32(p),
		RecvUnixNano: int64(binary.BigEndian.Uint64(p[4:])),
		Bytes:        binary.BigEndian.Uint32(p[12:]),
	}, nil
}

// MarshalAdvertise serializes a codec-family advertisement.
func MarshalAdvertise(names []string) []byte {
	return []byte(strings.Join(names, ","))
}

// UnmarshalAdvertise parses an advertisement payload.
func UnmarshalAdvertise(p []byte) []string {
	if len(p) == 0 {
		return nil
	}
	return strings.Split(string(p), ",")
}

// ControlMsg is the payload of MsgControl: a tagged message passed
// through the daemon to every renderer interface as a remote callback.
type ControlMsg struct {
	// Tag names the callback ("view", "colormap", "codec", "start",
	// "stop", ...).
	Tag string
	// Data is the tag-specific payload.
	Data []byte
}

// Marshal serializes the control message.
func (m *ControlMsg) Marshal() ([]byte, error) {
	if len(m.Tag) > 255 {
		return nil, fmt.Errorf("transport: control tag too long")
	}
	out := make([]byte, 0, 1+len(m.Tag)+len(m.Data))
	out = append(out, byte(len(m.Tag)))
	out = append(out, m.Tag...)
	return append(out, m.Data...), nil
}

// UnmarshalControl parses a ControlMsg payload.
func UnmarshalControl(p []byte) (*ControlMsg, error) {
	if len(p) < 1 {
		return nil, ErrTruncated
	}
	n := int(p[0])
	if len(p) < 1+n {
		return nil, ErrTruncated
	}
	return &ControlMsg{Tag: string(p[1 : 1+n]), Data: p[1+n:]}, nil
}
