package transport

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/testutil"
)

// chaosEnv is one daemon + renderer session + viewer session triple
// with a fault injector on the renderer's first connection.
type chaosEnv struct {
	daemon    *Daemon
	addr      string
	inj       *fault.Injector
	rend      *Session
	view      *Session
	delivered atomic.Int64
	connects  atomic.Int64 // renderer OnConnect invocations

	logMu sync.Mutex
	logs  []string
}

func (e *chaosEnv) logf(format string, args ...any) {
	e.logMu.Lock()
	e.logs = append(e.logs, format)
	e.logMu.Unlock()
}

func (e *chaosEnv) logged(substr string) bool {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	for _, l := range e.logs {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// chaosFrameData is the per-frame payload; the on-wire v2 frame length
// is derived from it in chaosWireFrameLen.
var chaosFrameData = make([]byte, 100)

// chaosWireFrameLen is the exact v2 on-wire length of one test frame:
// 6-byte header + ImageMsg payload (21 + len("raw") + data) + CRC32.
const chaosWireFrameLen = 6 + (21 + 3 + 100) + 4

// chaosHelloLen is the v1-framed client hello: 5-byte header + 2-byte
// role/version payload.
const chaosHelloLen = 7

func newChaosEnv(t *testing.T, plan fault.Plan) *chaosEnv {
	t.Helper()
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	env := &chaosEnv{daemon: d, addr: d.Addr().String(), inj: fault.New(plan)}
	t.Cleanup(func() { env.daemon.Close() })

	env.view, err = NewSession(SessionConfig{
		Role: RoleDisplay,
		Addr: env.addr,
		Retry: RetryPolicy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond,
			Factor: 2, Jitter: -1, MaxAttempts: 400},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.view.Close() })
	go func() {
		for m := range env.view.Inbox() {
			if m.Type == MsgImage {
				env.delivered.Add(1)
			}
		}
	}()

	// Only the renderer's FIRST connection runs through the injector:
	// the fault models one bad link period, and reconnection gets a
	// clean socket.
	var dials atomic.Int64
	env.rend, err = NewSession(SessionConfig{
		Role: RoleRenderer,
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", env.addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				c = env.inj.Wrap(c)
			}
			return c, nil
		},
		Retry: RetryPolicy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond,
			Factor: 2, Jitter: -1, MaxAttempts: 400},
		Seed:      7,
		OnConnect: func(*Endpoint) error { env.connects.Add(1); return nil },
		Logf:      env.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.rend.Close() })
	return env
}

// sendRetry pushes one frame, retrying through reconnect windows until
// the session accepts it.
func (e *chaosEnv) sendRetry(t *testing.T, id uint32) {
	t.Helper()
	im := &ImageMsg{FrameID: id, PieceCount: 1, X1: 8, Y1: 8, W: 8, H: 8,
		Codec: "raw", Data: chaosFrameData}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := e.rend.SendImage(im); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("frame %d never accepted by the session", id)
}

func (e *chaosEnv) waitDelivered(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for e.delivered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := e.delivered.Load(); got < n {
		t.Fatalf("delivered %d frames, want >= %d", got, n)
	}
}

// TestChaosRecovery drives the daemon/renderer/viewer triple through
// each injected fault class and checks the pipeline recovers within
// the session's bounded backoff.
func TestChaosRecovery(t *testing.T) {
	testutil.CheckGoroutines(t)
	const half = 6 // frames per phase; 12 total
	cases := []struct {
		name string
		plan fault.Plan
		mid  func(t *testing.T, env *chaosEnv) // between the two halves
		// firstHalfMin / totalMin bound delivery; frames corrupted or
		// lost in flight while the link died are the only slack.
		firstHalfMin  int64
		totalMin      int64
		wantReconnect bool
		wantCorrupt   int64
	}{
		{
			name: "conn-drop-mid-stream",
			// The link dies during the 6th frame; the retrying sender
			// pushes it again after reconnect, so nothing is lost.
			plan:          fault.Plan{DropAfterBytes: chaosHelloLen + 5*chaosWireFrameLen + 10},
			firstHalfMin:  half,
			totalMin:      2 * half,
			wantReconnect: true,
		},
		{
			name: "corrupt-frame-payload",
			// Payload bytes of frames 3 and 8 flip in flight: the CRC
			// catches both at the daemon, which drops them and keeps
			// the connection; they are never displayed.
			plan: fault.Plan{CorruptOffsets: []int64{
				chaosHelloLen + 2*chaosWireFrameLen + 6 + 30,
				chaosHelloLen + 7*chaosWireFrameLen + 6 + 30,
			}},
			firstHalfMin: half - 1,
			totalMin:     2*half - 2,
			wantCorrupt:  2,
		},
		{
			name: "corrupt-length-header",
			// Flipping the length prefix is not survivable in-stream:
			// the daemon rejects the bogus length (ErrTooLarge) and
			// resets the connection; the session reconnects. The
			// corrupted frame plus any in flight behind it are lost.
			plan:          fault.Plan{CorruptOffsets: []int64{chaosHelloLen + 3*chaosWireFrameLen}},
			firstHalfMin:  3,
			totalMin:      2*half - 3,
			wantReconnect: true,
		},
		{
			name:         "stall-then-resume",
			plan:         fault.Plan{StallAfterBytes: chaosHelloLen + 2*chaosWireFrameLen, Stall: 200 * time.Millisecond},
			firstHalfMin: half,
			totalMin:     2 * half,
		},
		{
			name: "slow-start-link",
			plan: fault.Plan{SlowStartBytes: chaosHelloLen + 3*chaosWireFrameLen,
				SlowStartBandwidth: 100_000},
			firstHalfMin: half,
			totalMin:     2 * half,
		},
		{
			name: "daemon-restart",
			plan: fault.Plan{},
			mid: func(t *testing.T, env *chaosEnv) {
				env.daemon.Close()
				d, err := ListenAndServe(env.addr)
				if err != nil {
					t.Fatalf("restart daemon: %v", err)
				}
				env.daemon = d
				t.Cleanup(func() { d.Close() })
				deadline := time.Now().Add(10 * time.Second)
				for time.Now().Before(deadline) {
					if env.rend.State().Connected && env.view.State().Connected {
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				t.Fatal("sessions did not reconnect after daemon restart")
			},
			firstHalfMin:  half,
			totalMin:      2 * half,
			wantReconnect: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newChaosEnv(t, tc.plan)
			for i := 0; i < half; i++ {
				env.sendRetry(t, uint32(i))
			}
			env.waitDelivered(t, tc.firstHalfMin)
			if tc.mid != nil {
				tc.mid(t, env)
			}
			for i := half; i < 2*half; i++ {
				env.sendRetry(t, uint32(i))
			}
			env.waitDelivered(t, tc.totalMin)

			st := env.rend.State()
			if tc.wantReconnect {
				if st.Reconnects < 1 {
					t.Errorf("reconnects = %d, want >= 1", st.Reconnects)
				}
				if !env.logged("reconnect attempt") {
					t.Error("no bounded-backoff attempts were logged")
				}
			} else if st.Reconnects != 0 {
				t.Errorf("unexpected reconnects: %d", st.Reconnects)
			}
			if err := env.rend.Err(); err != nil {
				t.Errorf("session hit terminal error: %v", err)
			}
			// OnConnect re-runs after every reconnect (re-advertise).
			if got := env.connects.Load(); got != 1+st.Reconnects {
				t.Errorf("OnConnect ran %d times, want %d", got, 1+st.Reconnects)
			}
			if tc.wantCorrupt > 0 {
				// Let the tail settle, then check corrupted frames were
				// counted at the daemon and never reached the viewer.
				time.Sleep(50 * time.Millisecond)
				if got := env.daemon.Stats().CorruptDropped.Load(); got != tc.wantCorrupt {
					t.Errorf("daemon CorruptDropped = %d, want %d", got, tc.wantCorrupt)
				}
				if got := env.delivered.Load(); got != tc.totalMin {
					t.Errorf("delivered = %d, want exactly %d (corrupt frames must never display)", got, tc.totalMin)
				}
			}
		})
	}
}

// TestChaosPartitionEvictionRecovery: a partition stalls the renderer's
// writes (including heartbeat pongs) while TCP keeps the socket open.
// The daemon's dead-peer monitor evicts it; once the partition heals
// the session notices the dead socket and reconnects cleanly.
func TestChaosPartitionEvictionRecovery(t *testing.T) {
	testutil.CheckGoroutines(t)
	env := newChaosEnv(t, fault.Plan{})
	env.daemon.SetHeartbeat(10*time.Millisecond, 50*time.Millisecond)

	for i := 0; i < 3; i++ {
		env.sendRetry(t, uint32(i))
	}
	env.waitDelivered(t, 3)

	env.inj.Partition()
	deadline := time.Now().Add(10 * time.Second)
	for env.daemon.Stats().PeersEvicted.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if env.daemon.Stats().PeersEvicted.Load() == 0 {
		t.Fatal("daemon never evicted the partitioned renderer")
	}
	if env.daemon.Stats().PingsSent.Load() == 0 {
		t.Fatal("no heartbeat pings recorded")
	}
	env.inj.Heal()

	for time.Now().Before(deadline) {
		st := env.rend.State()
		if st.Connected && st.Reconnects >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := env.rend.State(); !st.Connected || st.Reconnects < 1 {
		t.Fatalf("session did not recover after heal: %+v", st)
	}
	for i := 3; i < 6; i++ {
		env.sendRetry(t, uint32(i))
	}
	env.waitDelivered(t, 6)
}

// TestChaosSessionHeartbeatDetectsStalledLink is the client-side
// mirror of eviction: a peer that handshakes and then never answers
// pings must be declared dead by the session's own silence detector,
// since TCP alone would keep the socket open forever.
func TestChaosSessionHeartbeatDetectsStalledLink(t *testing.T) {
	testutil.CheckGoroutines(t)
	// A fake daemon that completes the handshake and then goes mute.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				if _, err := ReadMessage(c); err != nil {
					return
				}
				WriteMessage(c, Message{Type: MsgHello, Payload: HelloPayload(RoleRenderer, ProtoV2)})
				// Swallow everything, answer nothing.
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	var disconnects atomic.Int64
	s, err := NewSession(SessionConfig{
		Role:        RoleRenderer,
		Addr:        ln.Addr().String(),
		Heartbeat:   10 * time.Millisecond,
		PeerTimeout: 50 * time.Millisecond,
		Retry: RetryPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond,
			Factor: 2, Jitter: -1, MaxAttempts: 200},
		OnDisconnect: func(error) { disconnects.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	deadline := time.Now().Add(10 * time.Second)
	for disconnects.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if disconnects.Load() == 0 {
		t.Fatal("session heartbeat never declared the mute daemon dead")
	}
}
