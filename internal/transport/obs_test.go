package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDaemonInstrument pins the metrics bridge: after forwarding real
// frames, the registry's Prometheus exposition carries the forwarded
// counter and the inter-frame delay histogram.
func TestDaemonInstrument(t *testing.T) {
	d := startDaemon(t)
	reg := obs.NewRegistry()
	d.Instrument(reg)
	addr := d.Addr().String()

	disp, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()

	const n = 3
	for i := 0; i < n; i++ {
		im := &ImageMsg{FrameID: uint32(i), PieceCount: 1, X1: 8, Y1: 8, W: 8, H: 8, Codec: "raw", Data: []byte{1, 2}}
		if err := rend.SendImage(im); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-disp.Inbox():
		case <-time.After(2 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}

	snap := reg.Snapshot()
	if got := snap["daemon_images_forwarded_total"]; got != float64(n) {
		t.Fatalf("daemon_images_forwarded_total = %v, want %d", got, n)
	}
	if got := snap["daemon_displays"]; got != 1.0 {
		t.Fatalf("daemon_displays = %v, want 1", got)
	}
	if got := snap["daemon_interframe_delay_seconds_count"]; got != float64(n-1) {
		t.Fatalf("interframe delay count = %v, want %d", got, n-1)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		"# TYPE daemon_images_forwarded_total counter",
		"# TYPE daemon_interframe_delay_seconds summary",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
}
