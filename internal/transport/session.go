package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrReconnecting is returned by Session.Send while the underlying
// connection is down and being re-established. Senders of periodic
// data (frames) typically drop the message and try again later.
var ErrReconnecting = errors.New("transport: session reconnecting")

// RetryPolicy paces reconnect attempts: exponential backoff from Base
// by Factor up to Max, each delay randomized by +/-Jitter to keep a
// fleet of clients from reconnecting in lockstep.
type RetryPolicy struct {
	// Base is the first retry delay (default 50ms).
	Base time.Duration
	// Max caps the backoff delay (default 5s).
	Max time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Jitter is the +/- randomization fraction of each delay
	// (default 0.2; set negative for exactly zero jitter).
	Jitter float64
	// MaxAttempts bounds consecutive failed dials before the session
	// gives up with a terminal error (0 = 16).
	MaxAttempts int
}

// DefaultRetry is the standard wide-area reconnect policy.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Base: 50 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.2, MaxAttempts: 16}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetry()
	if p.Base <= 0 {
		p.Base = def.Base
	}
	if p.Max <= 0 {
		p.Max = def.Max
	}
	if p.Factor < 1 {
		p.Factor = def.Factor
	}
	if p.Jitter == 0 {
		p.Jitter = def.Jitter
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	return p
}

// delay computes the backoff before attempt n (1-based).
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	return time.Duration(d)
}

// UpstreamBreaker is the circuit-breaker surface a session consults
// before each dial attempt (guard.Breaker implements it; the interface
// keeps transport free of a guard dependency). Allow gates the
// attempt; Success/Failure feed its outcome back.
type UpstreamBreaker interface {
	Allow() bool
	Success()
	Failure()
}

// SessionConfig configures an auto-reconnecting session.
type SessionConfig struct {
	// Role is the endpoint role announced at every handshake.
	Role Role
	// Kind is the client kind announced in the hello (KindViewer,
	// KindRelay); admission control prioritizes relays.
	Kind byte
	// Addr is dialed over TCP when Dial is nil; Wrap optionally
	// wraps each new socket (e.g. wan.Shape).
	Addr string
	Wrap func(net.Conn) net.Conn
	// Dial, when set, produces each raw connection (tests inject
	// fault-wrapped pipes here); it overrides Addr/Wrap.
	Dial func() (net.Conn, error)
	// Retry paces reconnect attempts (zero value = DefaultRetry).
	Retry RetryPolicy
	// Heartbeat, when positive, pings the daemon on this interval and
	// declares the link dead after PeerTimeout of inbound silence —
	// the only way to notice a stalled (partitioned) connection that
	// TCP keeps open.
	Heartbeat time.Duration
	// PeerTimeout is the silence threshold (default 3x Heartbeat).
	PeerTimeout time.Duration
	// OnConnect runs after every successful handshake (including the
	// first) — the hook for re-advertising codecs or re-subscribing.
	// An error tears the fresh connection down and counts as a
	// failed attempt.
	OnConnect func(*Endpoint) error
	// OnDisconnect observes every connection loss (with its cause)
	// before reconnection starts.
	OnDisconnect func(error)
	// Breaker, when set, circuit-breaks the upstream: Allow is
	// consulted before every dial (a refused attempt waits out the
	// backoff without touching the network, so a fleet of relays
	// stops hammering a dead parent), and each attempt's outcome is
	// reported back. Open-breaker refusals still consume reconnect
	// attempts, so MaxAttempts remains the terminal bound.
	Breaker UpstreamBreaker
	// Seed seeds the backoff jitter for reproducible schedules
	// (0 = 1).
	Seed int64
	// Logf receives reconnect diagnostics (nil silences).
	Logf func(format string, args ...any)
	// Sleep replaces time.Sleep between attempts (tests compress
	// time with it; nil = real sleep).
	Sleep func(time.Duration)
}

// SessionState is a Session health snapshot.
type SessionState struct {
	Connected      bool  `json:"connected"`
	Reconnects     int64 `json:"reconnects"`
	DialAttempts   int64 `json:"dial_attempts"`
	CorruptDropped int64 `json:"corrupt_dropped"`
}

// Session is a Link that survives connection loss: when the
// underlying endpoint dies it redials with exponential backoff and
// jitter, re-runs OnConnect (re-advertise, re-subscribe), and resumes
// delivering messages on the same Inbox channel. The inbox closes
// only on Close or when MaxAttempts consecutive dials fail (Err then
// reports the terminal error).
type Session struct {
	cfg   SessionConfig
	retry RetryPolicy

	mu  sync.Mutex
	ep  *Endpoint // nil while reconnecting
	rng *rand.Rand

	inbox chan Message
	done  chan struct{}
	once  sync.Once

	emu     sync.Mutex
	termErr error

	reconnects   atomic.Int64
	dialAttempts atomic.Int64
	corrupt      atomic.Int64
}

// NewSession dials the daemon (retrying per the policy) and starts
// the session. It returns an error only when the initial dial
// exhausts MaxAttempts.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Dial == nil {
		addr, wrap := cfg.Addr, cfg.Wrap
		cfg.Dial = func() (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if wrap != nil {
				conn = wrap(conn)
			}
			return conn, nil
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Session{
		cfg:   cfg,
		retry: cfg.Retry.withDefaults(),
		rng:   rand.New(rand.NewSource(seed)),
		inbox: make(chan Message, 64),
		done:  make(chan struct{}),
	}
	ep, err := s.connect(true)
	if err != nil {
		return nil, err
	}
	go s.run(ep)
	return s, nil
}

// connect dials until an endpoint handshakes (and OnConnect accepts
// it) or attempts run out. The first overall connection skips the
// pre-dial backoff.
func (s *Session) connect(first bool) (*Endpoint, error) {
	var lastErr error
	for attempt := 1; attempt <= s.retry.MaxAttempts; attempt++ {
		if !first || attempt > 1 {
			s.mu.Lock()
			d := s.retry.delay(attempt, s.rng)
			s.mu.Unlock()
			s.cfg.Logf("transport: reconnect attempt %d/%d in %v", attempt, s.retry.MaxAttempts, d.Round(time.Millisecond))
			s.pause(d)
		}
		if s.closed() {
			return nil, fmt.Errorf("transport: session closed")
		}
		if br := s.cfg.Breaker; br != nil && !br.Allow() {
			// Circuit open: skip the network entirely and let the
			// backoff pace the next look at the breaker.
			if lastErr == nil {
				lastErr = fmt.Errorf("transport: upstream circuit open")
			}
			s.cfg.Logf("transport: attempt %d/%d skipped, upstream circuit open", attempt, s.retry.MaxAttempts)
			continue
		}
		s.dialAttempts.Add(1)
		conn, err := s.cfg.Dial()
		if err != nil {
			lastErr = err
			s.noteAttempt(err)
			continue
		}
		ep, err := NewEndpointKind(conn, s.cfg.Role, s.cfg.Kind)
		if err != nil {
			lastErr = err
			s.noteAttempt(err)
			if be := (*BusyError)(nil); errors.As(err, &be) && be.RetryAfter > 0 {
				// Honor the daemon's retry-after hint on top of the
				// backoff: reconnecting sooner would just be rejected
				// again.
				s.cfg.Logf("transport: daemon busy (%s), honoring retry-after %v", be.Reason, be.RetryAfter)
				s.pause(be.RetryAfter)
			}
			continue
		}
		if s.cfg.OnConnect != nil {
			if err := s.cfg.OnConnect(ep); err != nil {
				ep.Close()
				lastErr = err
				s.noteAttempt(err)
				continue
			}
		}
		s.noteAttempt(nil)
		return ep, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("transport: no dial attempts allowed")
	}
	return nil, fmt.Errorf("transport: giving up after %d attempts: %w", s.retry.MaxAttempts, lastErr)
}

// noteAttempt reports one dial attempt's outcome to the breaker.
func (s *Session) noteAttempt(err error) {
	br := s.cfg.Breaker
	if br == nil {
		return
	}
	if err == nil {
		br.Success()
	} else {
		br.Failure()
	}
}

// run pumps one endpoint after another into the session inbox.
func (s *Session) run(ep *Endpoint) {
	for {
		s.mu.Lock()
		s.ep = ep
		s.mu.Unlock()
		// Close() may have landed while no endpoint was installed
		// (mid-reconnect): it had nothing to close, so a freshly
		// connected endpoint would pump a closed session forever.
		if s.closed() {
			ep.Close()
			close(s.inbox)
			return
		}
		stopHB := s.startHeartbeat(ep)
		for m := range ep.Inbox() {
			select {
			case s.inbox <- m:
			case <-s.done:
			}
		}
		stopHB()
		cause := ep.Err()
		s.corrupt.Add(ep.CorruptDropped())
		s.mu.Lock()
		s.ep = nil
		s.mu.Unlock()
		if s.closed() {
			close(s.inbox)
			return
		}
		if s.cfg.OnDisconnect != nil {
			s.cfg.OnDisconnect(cause)
		}
		s.cfg.Logf("transport: link lost (%v), reconnecting", cause)
		next, err := s.connect(false)
		if err != nil {
			s.emu.Lock()
			s.termErr = err
			s.emu.Unlock()
			s.cfg.Logf("transport: %v", err)
			close(s.inbox)
			return
		}
		s.reconnects.Add(1)
		s.cfg.Logf("transport: reconnected (proto v%d)", next.ProtoVersion()+1)
		ep = next
	}
}

// startHeartbeat monitors one endpoint's liveness; the returned stop
// function ends the monitor (idempotent via channel close on return).
func (s *Session) startHeartbeat(ep *Endpoint) func() {
	if s.cfg.Heartbeat <= 0 {
		return func() {}
	}
	timeout := s.cfg.PeerTimeout
	if timeout <= 0 {
		timeout = 3 * s.cfg.Heartbeat
	}
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(s.cfg.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if time.Since(ep.LastRecv()) > timeout {
				s.cfg.Logf("transport: peer silent beyond %v, dropping link", timeout)
				// Close the raw socket (not ep.Close: a Bye write
				// could block forever on the very stall being
				// detected); the read loop then ends the inbox and
				// run() reconnects.
				ep.conn.Close()
				return
			}
			_ = ep.Ping()
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }) }
}

// pause waits out a backoff delay, returning early on Close.
func (s *Session) pause(d time.Duration) {
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.done:
	}
}

func (s *Session) closed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Inbox delivers messages across reconnects; it closes on Close or
// when reconnection gives up.
func (s *Session) Inbox() <-chan Message { return s.inbox }

// Err reports the terminal session error (nil while the session is
// still live or after a clean Close).
func (s *Session) Err() error {
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.termErr
}

// State snapshots session health.
func (s *Session) State() SessionState {
	s.mu.Lock()
	connected := s.ep != nil
	var corrupt int64
	if s.ep != nil {
		corrupt = s.ep.CorruptDropped()
	}
	s.mu.Unlock()
	return SessionState{
		Connected:      connected,
		Reconnects:     s.reconnects.Load(),
		DialAttempts:   s.dialAttempts.Load(),
		CorruptDropped: s.corrupt.Load() + corrupt,
	}
}

// Send writes through the current connection; while the link is down
// it fails fast with ErrReconnecting so frame producers can drop the
// frame and continue.
func (s *Session) Send(m Message) error {
	s.mu.Lock()
	ep := s.ep
	s.mu.Unlock()
	if ep == nil {
		return ErrReconnecting
	}
	return ep.Send(m)
}

// SendImage marshals and sends an image piece.
func (s *Session) SendImage(im *ImageMsg) error {
	p, err := im.Marshal()
	if err != nil {
		return err
	}
	return s.Send(Message{Type: MsgImage, Payload: p})
}

// SendControl marshals and sends a control message.
func (s *Session) SendControl(c *ControlMsg) error {
	p, err := c.Marshal()
	if err != nil {
		return err
	}
	return s.Send(Message{Type: MsgControl, Payload: p})
}

// Close ends the session and the current connection.
func (s *Session) Close() error {
	var err error
	s.once.Do(func() {
		close(s.done)
		s.mu.Lock()
		ep := s.ep
		s.mu.Unlock()
		if ep != nil {
			err = ep.Close()
		}
	})
	return err
}
