package transport

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Daemon is the display daemon: it accepts any number of renderer and
// display connections, forwards image messages from renderers to every
// display, and routes control messages from displays back to every
// renderer. An image buffer per display absorbs bursts when rendering
// outpaces the wide-area link; when the buffer overflows the oldest
// frame is dropped, favoring interactivity over completeness (the
// paper's display daemon "uses an image buffer to cope with faster
// rendering rates").
type Daemon struct {
	mu        sync.Mutex
	ln        net.Listener
	renderers map[int]*peer
	displays  map[int]*peer
	nextID    int
	closed    bool

	// bufferFrames is the per-display image buffer depth, read from
	// per-connection goroutines, so it lives behind mu and is set via
	// SetBufferFrames.
	bufferFrames int

	// ifd observes the delay between consecutive forwarded frames
	// when the daemon is instrumented (nil otherwise); lastForward is
	// the previous forward time. Both behind mu.
	ifd         *obs.Histogram
	lastForward time.Time

	log   *obs.Logger
	stats DaemonStats
	wg    sync.WaitGroup
}

// DaemonStats counts daemon activity.
type DaemonStats struct {
	ImagesForwarded atomic.Int64
	ImagesDropped   atomic.Int64
	ControlsRouted  atomic.Int64
	BytesForwarded  atomic.Int64
	// AcksReceived counts display receive reports (consumed by the
	// adaptive stream broker; the plain daemon just counts them).
	AcksReceived atomic.Int64
}

type peer struct {
	id   int
	role Role
	conn net.Conn
	out  chan Message
	done chan struct{}
}

// NewDaemon starts a daemon on the listener. Callers own the
// listener's address; Serve runs until Close.
func NewDaemon(ln net.Listener) *Daemon {
	return &Daemon{
		ln:           ln,
		renderers:    map[int]*peer{},
		displays:     map[int]*peer{},
		bufferFrames: 8,
		log:          obs.NewLogger("daemon"),
	}
}

// Addr returns the daemon's listen address.
func (d *Daemon) Addr() net.Addr { return d.ln.Addr() }

// Stats exposes the daemon counters.
func (d *Daemon) Stats() *DaemonStats { return &d.stats }

// SetBufferFrames sets the per-display image buffer depth (default 8);
// safe to call while serving (applies to new connections).
func (d *Daemon) SetBufferFrames(n int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	d.bufferFrames = n
	d.mu.Unlock()
}

// SetLogf installs a diagnostics sink (nil silences); safe to call
// while serving. It is a compatibility shim over the daemon's leveled
// obs.Logger — see Logger for level control.
func (d *Daemon) SetLogf(f func(format string, args ...any)) {
	d.log.SetFunc(f)
}

// Logger exposes the daemon's component logger.
func (d *Daemon) Logger() *obs.Logger { return d.log }

// Instrument registers the daemon's counters on a metrics registry
// and starts observing the delay between consecutive forwarded frames
// into a daemon_interframe_delay_seconds histogram. Safe to call while
// serving.
func (d *Daemon) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := &d.stats
	reg.CounterFunc("daemon_images_forwarded_total",
		"Image messages forwarded from renderers to displays.", st.ImagesForwarded.Load)
	reg.CounterFunc("daemon_images_dropped_total",
		"Image messages dropped by full per-display buffers.", st.ImagesDropped.Load)
	reg.CounterFunc("daemon_bytes_forwarded_total",
		"Image payload bytes forwarded to displays.", st.BytesForwarded.Load)
	reg.CounterFunc("daemon_controls_routed_total",
		"User-control messages routed back to renderers.", st.ControlsRouted.Load)
	reg.CounterFunc("daemon_acks_received_total",
		"Display receive reports counted.", st.AcksReceived.Load)
	reg.GaugeFunc("daemon_displays", "Connected display clients.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.displays))
	})
	reg.GaugeFunc("daemon_renderers", "Connected renderer peers.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.renderers))
	})
	ifd := reg.Histogram("daemon_interframe_delay_seconds",
		"Delay between consecutive frames forwarded to displays.")
	d.mu.Lock()
	d.ifd = ifd
	d.lastForward = time.Time{}
	d.mu.Unlock()
}

// Serve accepts connections until the listener closes. Run it on its
// own goroutine.
func (d *Daemon) Serve() error {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		d.ServeConn(conn)
	}
}

// ServeConn runs the handshake and forwarding loop for one
// pre-established connection on a background goroutine. Tests and
// experiments use it to wrap individual accepted connections in
// per-client wan shaping before the daemon writes to them.
func (d *Daemon) ServeConn(conn net.Conn) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		conn.Close()
		return
	}
	d.wg.Add(1)
	d.mu.Unlock()
	go func() {
		defer d.wg.Done()
		d.handle(conn)
	}()
}

// Close stops accepting, disconnects all peers and waits for handler
// goroutines.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	peers := make([]*peer, 0, len(d.renderers)+len(d.displays))
	for _, p := range d.renderers {
		peers = append(peers, p)
	}
	for _, p := range d.displays {
		peers = append(peers, p)
	}
	d.mu.Unlock()
	err := d.ln.Close()
	for _, p := range peers {
		p.conn.Close()
	}
	d.wg.Wait()
	return err
}

func (d *Daemon) handle(conn net.Conn) {
	defer conn.Close()
	hello, err := ReadMessage(conn)
	if err != nil || hello.Type != MsgHello || len(hello.Payload) < 1 {
		d.log.Warnf("bad handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	role := Role(hello.Payload[0])
	if role != RoleRenderer && role != RoleDisplay {
		d.log.Warnf("unknown role %d", role)
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	p := &peer{role: role, conn: conn, out: make(chan Message, 4*d.bufferFrames), done: make(chan struct{})}
	d.nextID++
	p.id = d.nextID
	if role == RoleRenderer {
		d.renderers[p.id] = p
	} else {
		d.displays[p.id] = p
	}
	d.mu.Unlock()
	d.log.Infof("%s %d connected from %v", role, p.id, conn.RemoteAddr())

	// Welcome ack: the peer's Dial blocks until registration is
	// complete, so frames sent right after connecting cannot race past
	// a display that is still registering.
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: []byte{byte(role)}}); err != nil {
		d.mu.Lock()
		delete(d.renderers, p.id)
		delete(d.displays, p.id)
		d.mu.Unlock()
		close(p.done)
		return
	}

	defer func() {
		d.mu.Lock()
		delete(d.renderers, p.id)
		delete(d.displays, p.id)
		d.mu.Unlock()
		close(p.done)
		d.log.Infof("%s %d disconnected", role, p.id)
	}()

	// Writer drains the outbound queue.
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			select {
			case m := <-p.out:
				if err := WriteMessage(conn, m); err != nil {
					conn.Close()
					return
				}
			case <-p.done:
				return
			}
		}
	}()

	for {
		m, err := ReadMessage(conn)
		if err != nil {
			d.log.Infof("read from %s %d: %v", role, p.id, err)
			return
		}
		switch m.Type {
		case MsgImage:
			if role != RoleRenderer {
				d.log.Warnf("image from display %d ignored", p.id)
				continue
			}
			d.forwardToDisplays(m)
		case MsgControl:
			if role != RoleDisplay {
				d.log.Warnf("control from renderer %d ignored", p.id)
				continue
			}
			d.routeToRenderers(m)
		case MsgAck:
			// Display receive reports: the plain daemon has no
			// adaptive layer to feed, so it just counts them.
			d.stats.AcksReceived.Add(1)
		case MsgAdvertise:
			// Codec advertisements matter to the stream broker only.
		case MsgBye:
			return
		default:
			d.log.Warnf("unknown message type %d from %s %d", m.Type, role, p.id)
		}
	}
}

// forwardToDisplays enqueues an image for every display, dropping the
// oldest queued message when a display's buffer is full.
func (d *Daemon) forwardToDisplays(m Message) {
	d.mu.Lock()
	targets := make([]*peer, 0, len(d.displays))
	for _, p := range d.displays {
		targets = append(targets, p)
	}
	ifd := d.ifd
	if ifd != nil {
		now := time.Now()
		if !d.lastForward.IsZero() {
			ifd.ObserveDuration(now.Sub(d.lastForward))
		}
		d.lastForward = now
	}
	d.mu.Unlock()
	for _, p := range targets {
		for {
			select {
			case p.out <- m:
				d.stats.ImagesForwarded.Add(1)
				d.stats.BytesForwarded.Add(int64(len(m.Payload)))
			default:
				// Buffer full: drop the oldest and retry.
				select {
				case <-p.out:
					d.stats.ImagesDropped.Add(1)
				default:
				}
				continue
			}
			break
		}
	}
}

// routeToRenderers passes a control message to every renderer — the
// "remote callback" path.
func (d *Daemon) routeToRenderers(m Message) {
	d.mu.Lock()
	targets := make([]*peer, 0, len(d.renderers))
	for _, p := range d.renderers {
		targets = append(targets, p)
	}
	d.mu.Unlock()
	for _, p := range targets {
		select {
		case p.out <- m:
			d.stats.ControlsRouted.Add(1)
		case <-p.done:
		}
	}
}

// ListenAndServe starts a daemon on addr (e.g. "127.0.0.1:0") and
// serves on a background goroutine; the returned daemon is ready.
func ListenAndServe(addr string) (*Daemon, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	d := NewDaemon(ln)
	go func() {
		if err := d.Serve(); err != nil {
			log.Printf("transport: daemon serve: %v", err)
		}
	}()
	return d, nil
}
