package transport

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/provenance"
)

// Daemon is the display daemon: it accepts any number of renderer and
// display connections, forwards image messages from renderers to every
// display, and routes control messages from displays back to every
// renderer. An image buffer per display absorbs bursts when rendering
// outpaces the wide-area link; when the buffer overflows the oldest
// frame is dropped, favoring interactivity over completeness (the
// paper's display daemon "uses an image buffer to cope with faster
// rendering rates").
//
// The daemon treats the wide-area network as hostile: peers negotiate
// a CRC-checked wire framing at handshake (corrupt frames are counted
// and dropped, never forwarded), v2 peers are pinged on a heartbeat
// interval and evicted when silent past the dead-peer timeout, and
// per-peer health is observable via Health.
type Daemon struct {
	mu        sync.Mutex
	ln        net.Listener
	renderers map[int]*peer
	displays  map[int]*peer
	nextID    int
	closed    bool

	// conns tracks every accepted connection from before the
	// handshake completes until its handler exits, so Close can
	// unblock handlers still waiting for a hello (otherwise a
	// half-open connection would leak its goroutine past Close).
	conns map[net.Conn]struct{}

	// bufferFrames is the per-display image buffer depth, read from
	// per-connection goroutines, so it lives behind mu and is set via
	// SetBufferFrames.
	bufferFrames int

	// Heartbeat state: hbInterval is how often v2 peers are pinged;
	// hbTimeout is the silence threshold after which a v2 peer is
	// evicted. hbStop ends the heartbeat goroutine (nil until
	// started).
	hbInterval time.Duration
	hbTimeout  time.Duration
	hbStop     chan struct{}

	// ifd observes the delay between consecutive forwarded frames
	// when the daemon is instrumented (nil otherwise); lastForward is
	// the previous forward time. Both behind mu.
	ifd         *obs.Histogram
	lastForward time.Time

	// prov records per-frame provenance events when set (nil-safe).
	prov atomic.Pointer[provenance.Log]

	log   *obs.Logger
	stats DaemonStats
	wg    sync.WaitGroup
}

// DaemonStats counts daemon activity.
type DaemonStats struct {
	ImagesForwarded atomic.Int64
	ImagesDropped   atomic.Int64
	ControlsRouted  atomic.Int64
	BytesForwarded  atomic.Int64
	// AcksReceived counts display receive reports (consumed by the
	// adaptive stream broker; the plain daemon just counts them).
	AcksReceived atomic.Int64
	// CorruptDropped counts inbound messages dropped on CRC failure.
	CorruptDropped atomic.Int64
	// PeersEvicted counts peers disconnected by the dead-peer
	// heartbeat monitor.
	PeersEvicted atomic.Int64
	// PingsSent counts heartbeat probes enqueued to peers.
	PingsSent atomic.Int64
}

type peer struct {
	id     int
	role   Role
	conn   net.Conn
	fr     Framer
	remote string
	out    chan Message
	done   chan struct{}

	// lastSeen is the wall-clock nanos of the most recent inbound
	// message; rttNS the last heartbeat round-trip.
	lastSeen atomic.Int64
	rttNS    atomic.Int64
	// evicted marks a peer closed by the heartbeat monitor, for the
	// disconnect log line.
	evicted atomic.Bool
}

// PeerHealth is one peer's liveness snapshot, as served under
// /debug/status.
type PeerHealth struct {
	ID     int    `json:"id"`
	Role   string `json:"role"`
	Remote string `json:"remote"`
	// Proto is the negotiated wire version (0 legacy, 1 CRC-checked).
	Proto byte `json:"proto"`
	// SinceLastSeenMS is the silence time at snapshot; RTTMS the last
	// heartbeat round-trip (0 before the first pong).
	SinceLastSeenMS float64 `json:"since_last_seen_ms"`
	RTTMS           float64 `json:"rtt_ms"`
	// Healthy is false once silence exceeds the dead-peer timeout
	// (always true when heartbeats are off).
	Healthy bool `json:"healthy"`
}

// NewDaemon starts a daemon on the listener. Callers own the
// listener's address; Serve runs until Close.
func NewDaemon(ln net.Listener) *Daemon {
	return &Daemon{
		ln:           ln,
		renderers:    map[int]*peer{},
		displays:     map[int]*peer{},
		conns:        map[net.Conn]struct{}{},
		bufferFrames: 8,
		log:          obs.NewLogger("daemon"),
	}
}

// Addr returns the daemon's listen address.
func (d *Daemon) Addr() net.Addr { return d.ln.Addr() }

// Stats exposes the daemon counters.
func (d *Daemon) Stats() *DaemonStats { return &d.stats }

// SetBufferFrames sets the per-display image buffer depth (default 8);
// safe to call while serving (applies to new connections).
func (d *Daemon) SetBufferFrames(n int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	d.bufferFrames = n
	d.mu.Unlock()
}

// SetHeartbeat starts (or reconfigures) the daemon's liveness
// monitor: every interval each CRC-capable (v2) peer is pinged, and a
// v2 peer silent for longer than timeout is evicted — closed and
// counted in PeersEvicted. Legacy peers cannot be told apart from
// silent-but-healthy ones, so they are never evicted. timeout <= 0
// defaults to 3x the interval; interval <= 0 stops the monitor.
func (d *Daemon) SetHeartbeat(interval, timeout time.Duration) {
	if timeout <= 0 {
		timeout = 3 * interval
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hbInterval, d.hbTimeout = interval, timeout
	if d.hbStop != nil {
		close(d.hbStop)
		d.hbStop = nil
	}
	if interval <= 0 || d.closed {
		return
	}
	stop := make(chan struct{})
	d.hbStop = stop
	d.wg.Add(1)
	go d.heartbeat(interval, timeout, stop)
}

func (d *Daemon) heartbeat(interval, timeout time.Duration, stop chan struct{}) {
	defer d.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, p := range d.peers() {
			if p.fr.Version < ProtoV2 {
				continue
			}
			if silence := now.Sub(time.Unix(0, p.lastSeen.Load())); silence > timeout {
				p.evicted.Store(true)
				d.stats.PeersEvicted.Add(1)
				d.log.Warnf("%s %d silent for %v, evicting", p.role, p.id, silence.Round(time.Millisecond))
				p.conn.Close()
				continue
			}
			// Best-effort probe: a full outbound queue means the peer
			// link is busy; the pong would be stale anyway.
			select {
			case p.out <- Message{Type: MsgPing, Payload: MarshalPing(now.UnixNano())}:
				d.stats.PingsSent.Add(1)
			default:
			}
		}
	}
}

// peers snapshots all connected peers.
func (d *Daemon) peers() []*peer {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*peer, 0, len(d.renderers)+len(d.displays))
	for _, p := range d.renderers {
		out = append(out, p)
	}
	for _, p := range d.displays {
		out = append(out, p)
	}
	return out
}

// Health snapshots every peer's liveness state, ordered by peer id.
func (d *Daemon) Health() []PeerHealth {
	d.mu.Lock()
	timeout := d.hbTimeout
	hbOn := d.hbInterval > 0
	d.mu.Unlock()
	now := time.Now()
	var out []PeerHealth
	for _, p := range d.peers() {
		silence := now.Sub(time.Unix(0, p.lastSeen.Load()))
		out = append(out, PeerHealth{
			ID:              p.id,
			Role:            p.role.String(),
			Remote:          p.remote,
			Proto:           p.fr.Version,
			SinceLastSeenMS: float64(silence) / float64(time.Millisecond),
			RTTMS:           float64(p.rttNS.Load()) / float64(time.Millisecond),
			Healthy:         !hbOn || p.fr.Version < ProtoV2 || silence <= timeout,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetProvenance installs a frame-provenance log: traced images are
// recorded as received when read and relayed/dropped as they are
// forwarded. Safe to call while serving; nil disables.
func (d *Daemon) SetProvenance(l *provenance.Log) { d.prov.Store(l) }

// SetLogf installs a diagnostics sink (nil silences); safe to call
// while serving. It is a compatibility shim over the daemon's leveled
// obs.Logger — see Logger for level control.
func (d *Daemon) SetLogf(f func(format string, args ...any)) {
	d.log.SetFunc(f)
}

// Logger exposes the daemon's component logger.
func (d *Daemon) Logger() *obs.Logger { return d.log }

// Instrument registers the daemon's counters on a metrics registry
// and starts observing the delay between consecutive forwarded frames
// into a daemon_interframe_delay_seconds histogram. Safe to call while
// serving.
func (d *Daemon) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := &d.stats
	reg.CounterFunc("daemon_images_forwarded_total",
		"Image messages forwarded from renderers to displays.", st.ImagesForwarded.Load)
	reg.CounterFunc("daemon_images_dropped_total",
		"Image messages dropped by full per-display buffers.", st.ImagesDropped.Load)
	reg.CounterFunc("daemon_bytes_forwarded_total",
		"Image payload bytes forwarded to displays.", st.BytesForwarded.Load)
	reg.CounterFunc("daemon_controls_routed_total",
		"User-control messages routed back to renderers.", st.ControlsRouted.Load)
	reg.CounterFunc("daemon_acks_received_total",
		"Display receive reports counted.", st.AcksReceived.Load)
	reg.CounterFunc("daemon_corrupt_dropped_total",
		"Inbound messages dropped on wire CRC failure.", st.CorruptDropped.Load)
	reg.CounterFunc("daemon_peers_evicted_total",
		"Peers evicted by the dead-peer heartbeat monitor.", st.PeersEvicted.Load)
	reg.CounterFunc("daemon_pings_sent_total",
		"Heartbeat probes enqueued to peers.", st.PingsSent.Load)
	reg.GaugeFunc("daemon_displays", "Connected display clients.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.displays))
	})
	reg.GaugeFunc("daemon_renderers", "Connected renderer peers.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.renderers))
	})
	ifd := reg.Histogram("daemon_interframe_delay_seconds",
		"Delay between consecutive frames forwarded to displays.")
	d.mu.Lock()
	d.ifd = ifd
	d.lastForward = time.Time{}
	d.mu.Unlock()
}

// Serve accepts connections until the listener closes. Run it on its
// own goroutine.
func (d *Daemon) Serve() error {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		d.ServeConn(conn)
	}
}

// ServeConn runs the handshake and forwarding loop for one
// pre-established connection on a background goroutine. Tests and
// experiments use it to wrap individual accepted connections in
// per-client wan shaping before the daemon writes to them.
func (d *Daemon) ServeConn(conn net.Conn) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		conn.Close()
		return
	}
	d.conns[conn] = struct{}{}
	d.wg.Add(1)
	d.mu.Unlock()
	go func() {
		defer d.wg.Done()
		defer func() {
			d.mu.Lock()
			delete(d.conns, conn)
			d.mu.Unlock()
		}()
		d.handle(conn)
	}()
}

// Close stops accepting, disconnects all peers (including connections
// still mid-handshake) and waits for every handler goroutine.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	if d.hbStop != nil {
		close(d.hbStop)
		d.hbStop = nil
	}
	d.mu.Unlock()
	err := d.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	d.wg.Wait()
	return err
}

func (d *Daemon) handle(conn net.Conn) {
	defer conn.Close()
	hello, err := ReadMessage(conn)
	if err != nil || hello.Type != MsgHello || len(hello.Payload) < 1 {
		d.log.Warnf("bad handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	role, peerVer, err := ParseHello(hello.Payload)
	if err != nil {
		d.log.Warnf("bad hello from %v: %v", conn.RemoteAddr(), err)
		return
	}
	if role != RoleRenderer && role != RoleDisplay {
		d.log.Warnf("unknown role %d", role)
		return
	}
	ver := NegotiateVersion(ProtoV3, peerVer)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	p := &peer{
		role:   role,
		conn:   conn,
		fr:     Framer{Version: ver},
		remote: fmt.Sprint(conn.RemoteAddr()),
		out:    make(chan Message, 4*d.bufferFrames),
		done:   make(chan struct{}),
	}
	p.lastSeen.Store(time.Now().UnixNano())
	d.nextID++
	p.id = d.nextID
	if role == RoleRenderer {
		d.renderers[p.id] = p
	} else {
		d.displays[p.id] = p
	}
	d.mu.Unlock()
	d.log.Infof("%s %d connected from %v (proto v%d)", role, p.id, conn.RemoteAddr(), ver+1)

	// Welcome ack: the peer's Dial blocks until registration is
	// complete, so frames sent right after connecting cannot race past
	// a display that is still registering. The welcome also carries
	// the negotiated version (legacy peers ignore the extra byte).
	if err := WriteMessage(conn, Message{Type: MsgHello, Payload: HelloPayload(role, ver)}); err != nil {
		d.mu.Lock()
		delete(d.renderers, p.id)
		delete(d.displays, p.id)
		d.mu.Unlock()
		close(p.done)
		return
	}

	defer func() {
		d.mu.Lock()
		delete(d.renderers, p.id)
		delete(d.displays, p.id)
		d.mu.Unlock()
		close(p.done)
		if p.evicted.Load() {
			d.log.Infof("%s %d evicted", role, p.id)
		} else {
			d.log.Infof("%s %d disconnected", role, p.id)
		}
	}()

	// Writer drains the outbound queue.
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			select {
			case m := <-p.out:
				if err := p.fr.WriteMessage(conn, m); err != nil {
					conn.Close()
					return
				}
			case <-p.done:
				return
			}
		}
	}()

	for {
		m, err := p.fr.ReadMessage(conn)
		if err != nil {
			if errors.Is(err, ErrChecksum) {
				// The stream is still frame-aligned: drop the corrupt
				// message so it is never forwarded, and keep serving.
				d.stats.CorruptDropped.Add(1)
				d.log.Warnf("corrupt message from %s %d dropped", role, p.id)
				continue
			}
			d.log.Infof("read from %s %d: %v", role, p.id, err)
			return
		}
		p.lastSeen.Store(time.Now().UnixNano())
		switch m.Type {
		case MsgImage:
			if role != RoleRenderer {
				d.log.Warnf("image from display %d ignored", p.id)
				continue
			}
			if tc := m.Trace; tc != nil {
				d.prov.Load().Record(provenance.Event{
					Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
					Event: provenance.EvReceived, Bytes: len(m.Payload), Link: p.remote,
				})
			}
			d.forwardToDisplays(m)
		case MsgControl:
			if role != RoleDisplay {
				d.log.Warnf("control from renderer %d ignored", p.id)
				continue
			}
			d.routeToRenderers(m)
		case MsgAck:
			// Display receive reports: the plain daemon has no
			// adaptive layer to feed, so it just counts them.
			d.stats.AcksReceived.Add(1)
		case MsgAdvertise:
			// Codec advertisements matter to the stream broker only.
		case MsgPing:
			// Answer the peer's liveness probe, echoing its payload.
			select {
			case p.out <- Message{Type: MsgPong, Payload: m.Payload}:
			default:
			}
		case MsgPong:
			if sent, err := UnmarshalPing(m.Payload); err == nil {
				p.rttNS.Store(time.Now().UnixNano() - sent)
			}
		case MsgBye:
			return
		default:
			d.log.Warnf("unknown message type %d from %s %d", m.Type, role, p.id)
		}
	}
}

// forwardToDisplays enqueues an image for every display, dropping the
// oldest queued message when a display's buffer is full. A traced
// image is forwarded at the next hop ordinal.
func (d *Daemon) forwardToDisplays(m Message) {
	prov := d.prov.Load()
	if tc := m.Trace; tc != nil {
		fwd := *tc
		fwd.Hop++
		m.Trace = &fwd
		prov.Record(provenance.Event{
			Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
			Event: provenance.EvRelayed, Bytes: len(m.Payload),
		})
	}
	d.mu.Lock()
	targets := make([]*peer, 0, len(d.displays))
	for _, p := range d.displays {
		targets = append(targets, p)
	}
	ifd := d.ifd
	if ifd != nil {
		now := time.Now()
		if !d.lastForward.IsZero() {
			ifd.ObserveDuration(now.Sub(d.lastForward))
		}
		d.lastForward = now
	}
	d.mu.Unlock()
	for _, p := range targets {
		for {
			select {
			case p.out <- m:
				d.stats.ImagesForwarded.Add(1)
				d.stats.BytesForwarded.Add(int64(len(m.Payload)))
			default:
				// Buffer full: drop the oldest and retry.
				select {
				case dropped := <-p.out:
					d.stats.ImagesDropped.Add(1)
					if tc := dropped.Trace; tc != nil {
						prov.Record(provenance.Event{
							Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
							Event: provenance.EvDropped, Cause: "buffer-full",
						})
					}
				default:
				}
				continue
			}
			break
		}
	}
}

// routeToRenderers passes a control message to every renderer — the
// "remote callback" path.
func (d *Daemon) routeToRenderers(m Message) {
	d.mu.Lock()
	targets := make([]*peer, 0, len(d.renderers))
	for _, p := range d.renderers {
		targets = append(targets, p)
	}
	d.mu.Unlock()
	for _, p := range targets {
		select {
		case p.out <- m:
			d.stats.ControlsRouted.Add(1)
		case <-p.done:
		}
	}
}

// ListenAndServe starts a daemon on addr (e.g. "127.0.0.1:0") and
// serves on a background goroutine; the returned daemon is ready.
func ListenAndServe(addr string) (*Daemon, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	d := NewDaemon(ln)
	go func() {
		if err := d.Serve(); err != nil {
			log.Printf("transport: daemon serve: %v", err)
		}
	}()
	return d, nil
}
