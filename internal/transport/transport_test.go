package transport

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/wan"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: MsgHello, Payload: []byte{1}},
		{Type: MsgImage, Payload: bytes.Repeat([]byte{7}, 1000)},
		{Type: MsgBye},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

func TestReadMessageRejectsHugeLength(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, err := ReadMessage(buf); err == nil {
		t.Fatal("huge length accepted")
	}
}

func TestReadMessageTruncated(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 0, 10, 2, 1, 2})
	if _, err := ReadMessage(buf); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestImageMsgRoundTrip(t *testing.T) {
	m := &ImageMsg{
		FrameID: 42, PieceIndex: 2, PieceCount: 8,
		X0: 0, Y0: 64, X1: 256, Y1: 96, W: 256, H: 256,
		Codec: "jpeg+lzo", Data: []byte{9, 8, 7},
	}
	p, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalImage(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameID != 42 || got.PieceIndex != 2 || got.PieceCount != 8 ||
		got.Codec != "jpeg+lzo" || !bytes.Equal(got.Data, m.Data) ||
		got.X0 != 0 || got.Y0 != 64 || got.X1 != 256 || got.Y1 != 96 || got.W != 256 || got.H != 256 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestImageMsgValidation(t *testing.T) {
	if _, err := UnmarshalImage(nil); err == nil {
		t.Fatal("nil accepted")
	}
	base := &ImageMsg{FrameID: 1, PieceCount: 1, X1: 4, Y1: 4, W: 4, H: 4, Codec: "raw"}
	p, _ := base.Marshal()
	if _, err := UnmarshalImage(p); err != nil {
		t.Fatal(err)
	}
	bad := *base
	bad.PieceIndex = 5 // >= PieceCount
	p, _ = bad.Marshal()
	if _, err := UnmarshalImage(p); err == nil {
		t.Fatal("bad piece index accepted")
	}
	bad = *base
	bad.X1 = 10 // > W
	p, _ = bad.Marshal()
	if _, err := UnmarshalImage(p); err == nil {
		t.Fatal("region beyond frame accepted")
	}
}

func TestControlMsgRoundTrip(t *testing.T) {
	m := &ControlMsg{Tag: "view", Data: []byte{1, 2, 3, 4}}
	p, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalControl(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != "view" || !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("%+v", got)
	}
	if _, err := UnmarshalControl(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := UnmarshalControl([]byte{200, 'a'}); err == nil {
		t.Fatal("truncated tag accepted")
	}
}

func startDaemon(t *testing.T) *Daemon {
	t.Helper()
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDaemonForwardsImagesToDisplays(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := startDaemon(t)
	addr := d.Addr().String()

	disp, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()

	im := &ImageMsg{FrameID: 7, PieceCount: 1, X1: 8, Y1: 8, W: 8, H: 8, Codec: "raw", Data: []byte{1, 2}}
	if err := rend.SendImage(im); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-disp.Inbox():
		if m.Type != MsgImage {
			t.Fatalf("got type %d", m.Type)
		}
		got, err := UnmarshalImage(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.FrameID != 7 {
			t.Fatalf("frame %d", got.FrameID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("image never arrived")
	}
	if d.Stats().ImagesForwarded.Load() != 1 {
		t.Fatalf("forwarded = %d", d.Stats().ImagesForwarded.Load())
	}
}

func TestDaemonRoutesControlToRenderers(t *testing.T) {
	d := startDaemon(t)
	addr := d.Addr().String()

	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	disp, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()

	if err := disp.SendControl(&ControlMsg{Tag: "colormap", Data: []byte("jet")}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-rend.Inbox():
		c, err := UnmarshalControl(m.Payload)
		if err != nil || c.Tag != "colormap" {
			t.Fatalf("%v %v", c, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control never arrived")
	}
}

func TestDaemonMultipleDisplays(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := startDaemon(t)
	addr := d.Addr().String()
	var disps []*Endpoint
	for i := 0; i < 3; i++ {
		e, err := Dial(addr, RoleDisplay, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		disps = append(disps, e)
	}
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	im := &ImageMsg{FrameID: 1, PieceCount: 1, X1: 2, Y1: 2, W: 2, H: 2, Codec: "raw"}
	if err := rend.SendImage(im); err != nil {
		t.Fatal(err)
	}
	for i, e := range disps {
		select {
		case m := <-e.Inbox():
			if m.Type != MsgImage {
				t.Fatalf("display %d got type %d", i, m.Type)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("display %d never got the image", i)
		}
	}
}

func TestDaemonIgnoresWrongDirection(t *testing.T) {
	d := startDaemon(t)
	addr := d.Addr().String()
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	disp, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	// A display sending an image must not reach renderers or displays.
	if err := disp.SendImage(&ImageMsg{FrameID: 9, PieceCount: 1, X1: 1, Y1: 1, W: 1, H: 1, Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-rend.Inbox():
		t.Fatalf("renderer received unexpected %d", m.Type)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestDaemonDropsWhenDisplayStalls(t *testing.T) {
	d := startDaemon(t)
	d.SetBufferFrames(1)
	addr := d.Addr().String()
	// A display that never reads from its socket: fill its daemon
	// buffer and verify drops are counted rather than the daemon
	// stalling.
	disp, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	big := &ImageMsg{FrameID: 0, PieceCount: 1, X1: 100, Y1: 100, W: 100, H: 100, Codec: "raw", Data: make([]byte, 1<<20)}
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 300 && d.Stats().ImagesDropped.Load() == 0; i++ {
		big.FrameID = uint32(i)
		if err := rend.SendImage(big); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if d.Stats().ImagesDropped.Load() == 0 {
		t.Skip("no drops observed (fast drain); drop path covered elsewhere")
	}
}

func TestDaemonRejectsBadHandshake(t *testing.T) {
	d := startDaemon(t)
	addr := d.Addr().String()
	// Unknown role byte: the daemon closes without a welcome, so Dial
	// fails.
	if e, err := Dial(addr, Role(9), nil); err == nil {
		e.Close()
		t.Fatal("bad role accepted")
	}
}

func TestRoleString(t *testing.T) {
	if RoleRenderer.String() != "renderer" || RoleDisplay.String() != "display" {
		t.Fatal("role strings")
	}
	if Role(9).String() != "role(9)" {
		t.Fatalf("got %q", Role(9).String())
	}
}

func TestEndpointCloseIdempotent(t *testing.T) {
	d := startDaemon(t)
	e, err := Dial(d.Addr().String(), RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFraming(b *testing.B) {
	m := Message{Type: MsgImage, Payload: make([]byte, 64<<10)}
	var buf bytes.Buffer
	b.SetBytes(int64(len(m.Payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleListenAndServe() {
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Close()
	fmt.Println(d.Addr() != nil)
	// Output: true
}

func TestAckMsgRoundTrip(t *testing.T) {
	m := &AckMsg{FrameID: 99, RecvUnixNano: 1234567890123, Bytes: 4096}
	got, err := UnmarshalAck(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := UnmarshalAck([]byte{1, 2}); err == nil {
		t.Fatal("short ack accepted")
	}
}

func TestAdvertiseRoundTrip(t *testing.T) {
	names := []string{"raw", "jpeg", "jpeg+lzo"}
	got := UnmarshalAdvertise(MarshalAdvertise(names))
	if len(got) != 3 || got[0] != "raw" || got[2] != "jpeg+lzo" {
		t.Fatalf("round trip: %v", got)
	}
	if UnmarshalAdvertise(nil) != nil {
		t.Fatal("empty advertisement should be nil")
	}
}

// The plain daemon counts display acks and ignores renderer codec
// advertisements rather than dropping the connections.
func TestDaemonToleratesAckAndAdvertise(t *testing.T) {
	d := startDaemon(t)
	addr := d.Addr().String()
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	disp, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	if err := rend.Send(Message{Type: MsgAdvertise, Payload: MarshalAdvertise([]string{"jpeg"})}); err != nil {
		t.Fatal(err)
	}
	ack := AckMsg{FrameID: 1, RecvUnixNano: 42}
	if err := disp.Send(Message{Type: MsgAck, Payload: ack.Marshal()}); err != nil {
		t.Fatal(err)
	}
	// Both connections must still forward traffic afterwards.
	if err := rend.SendImage(&ImageMsg{FrameID: 2, PieceCount: 1, X1: 1, Y1: 1, W: 1, H: 1, Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-disp.Inbox():
		if m.Type != MsgImage {
			t.Fatalf("got type %d", m.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("image never arrived after ack/advertise")
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().AcksReceived.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.Stats().AcksReceived.Load() != 1 {
		t.Fatalf("acks = %d", d.Stats().AcksReceived.Load())
	}
}

// One display on a stalled WAN-shaped connection must not delay the
// fast displays: forwarding is per-display buffered with drop-oldest,
// so the fast viewer sees every frame promptly while the stalled one
// accumulates drops, never an unbounded backlog.
func TestDaemonStalledWANViewerDoesNotDelayFastViewer(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := startDaemon(t)
	d.SetBufferFrames(2)
	addr := d.Addr().String()

	fast, err := Dial(addr, RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	// The stalled viewer: its daemon-side connection is shaped to a
	// crawling link (1 KB/s), so the daemon's writer goroutine for it
	// blocks almost immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	stalledConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	serverSide := <-accepted
	crawl := wan.Profile{Name: "crawl", Latency: 50 * time.Millisecond, Bandwidth: 1e3, Burst: 512}
	d.ServeConn(wan.Shape(serverSide, crawl))
	stalled, err := NewEndpoint(stalledConn, RoleDisplay)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()

	// Drain the fast viewer concurrently, as a real display would.
	const n = 30
	gotCh := make(chan int, 1)
	go func() {
		got := 0
		for m := range fast.Inbox() {
			if m.Type == MsgImage {
				got++
				if got == n {
					break
				}
			}
		}
		gotCh <- got
	}()

	payload := make([]byte, 32<<10)
	start := time.Now()
	for i := 0; i < n; i++ {
		im := &ImageMsg{FrameID: uint32(i), PieceCount: 1, X1: 100, Y1: 100, W: 100, H: 100, Codec: "raw", Data: payload}
		if err := rend.SendImage(im); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	sendTime := time.Since(start)
	// 30 × 32 KB over the 1 KB/s link would take ~16 minutes if the
	// renderer or the fast path were serialized behind it.
	if sendTime > 10*time.Second {
		t.Fatalf("renderer blocked %v behind the stalled viewer", sendTime)
	}

	select {
	case got := <-gotCh:
		if got < n {
			t.Fatalf("fast viewer received %d/%d frames", got, n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fast viewer starved behind the stalled one")
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().ImagesDropped.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if d.Stats().ImagesDropped.Load() == 0 {
		t.Fatal("stalled viewer accumulated no drops — backlog is unbounded")
	}
}

// Close must tear down every per-connection goroutine (handler and
// writer) deterministically — no goroutine leaks.
func TestDaemonCloseLeaksNoGoroutines(t *testing.T) {
	testutil.CheckGoroutines(t)
	before := runtime.NumGoroutine()
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := d.Addr().String()
	var eps []*Endpoint
	for i := 0; i < 3; i++ {
		e, err := Dial(addr, RoleDisplay, nil)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, e)
	}
	rend, err := Dial(addr, RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps = append(eps, rend)
	for i := 0; i < 5; i++ {
		if err := rend.SendImage(&ImageMsg{FrameID: uint32(i), PieceCount: 1, X1: 1, Y1: 1, W: 1, H: 1, Codec: "raw"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range eps {
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 64<<10)
	nb := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d before, %d after close\n%s", before, runtime.NumGoroutine(), buf[:nb])
}

// ServeConn registers a pre-established connection exactly like an
// accepted one, and refuses connections after Close.
func TestDaemonServeConn(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := startDaemon(t)
	a, b := net.Pipe()
	d.ServeConn(b)
	disp, err := NewEndpoint(a, RoleDisplay)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	rend, err := Dial(d.Addr().String(), RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	if err := rend.SendImage(&ImageMsg{FrameID: 3, PieceCount: 1, X1: 1, Y1: 1, W: 1, H: 1, Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-disp.Inbox():
		if m.Type != MsgImage {
			t.Fatalf("type %d", m.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("piped display got nothing")
	}

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	x, y := net.Pipe()
	d.ServeConn(y) // must close the conn, not hang
	x.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := x.Read(make([]byte, 1)); err == nil {
		t.Fatal("conn served after Close")
	}
}

// When the daemon dies mid-stream, connected endpoints observe a
// closed inbox rather than hanging.
func TestDaemonDeathClosesEndpoints(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	disp, err := Dial(d.Addr().String(), RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-disp.Inbox():
		if ok {
			t.Fatal("message after daemon death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inbox never closed after daemon death")
	}
}
