package soak

import (
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestSoakShortSchedule runs the whole soak on a compressed schedule:
// the harness must stand up, drive every phase, and the structural
// invariants (no panic, admission engaged, ladder engaged, memory
// bounded, drained ledger, no leaks, healthy watchdog) must hold.
// The purely timing-sensitive frame-age invariant is reported but
// only warned about here — the CI soak job holds the full line.
func TestSoakShortSchedule(t *testing.T) {
	testutil.CheckGoroutines(t)
	res, err := Run(Config{
		Seed:           7,
		BaseViewers:    4,
		FrameInterval:  15 * time.Millisecond,
		BaselineFrames: 15,
		FloodFrames:    30,
		StallDuration:  100 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness failed to stand up: %v", err)
	}
	for _, inv := range res.Invariants {
		if inv.OK {
			continue
		}
		if inv.Name == "frame-age" {
			t.Logf("WARNING: timing-sensitive invariant %s tripped: %s", inv.Name, inv.Detail)
			continue
		}
		t.Errorf("invariant %s tripped: %s", inv.Name, inv.Detail)
	}
	if res.Rejected == 0 {
		t.Error("flood was fully admitted; admission control never engaged")
	}
	if res.Kills == 0 {
		t.Error("the scripted kill severed nothing")
	}
	t.Logf("admitted %d rejected %d shed %d peak %dB recovery %.0fms transitions %v",
		res.Admitted, res.Rejected, res.Shed, res.PeakUsedBytes, res.RecoveryMS, res.Transitions)
}

// TestSoakReproducibleAdmission: the same seed must produce the same
// flood arrival schedule — spot-checked by the admission split being
// deterministic enough to engage both counters every run.
func TestSoakConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BudgetBytes <= 0 || cfg.MaxClients <= 0 || cfg.FloodFactor <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if cfg.RecoverySLO <= 0 || cfg.FrameInterval <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}
