// Package soak drives a live loopback relay tree through a seeded,
// randomized overload-and-fault schedule and checks the resilience
// invariants the guard layer promises: admission control engages
// under a client flood, memory stays bounded by the governor budget
// instead of growing with offered load, admitted clients keep a
// bounded p99 frame age, service recovers within an SLO after a hard
// link kill, the watchdog never sees a stalled broker loop, and the
// whole run drains — zero residual budget bytes and zero leaked
// goroutines. It is the proof harness behind `paperbench -exp
// overload`.
package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/img"
	"repro/internal/relay"
	"repro/internal/stream"
	"repro/internal/transport"
)

// Config is the soak schedule. Zero values pick defaults sized for a
// CI run under -race; Quick-mode callers shrink the frame counts.
type Config struct {
	// Seed makes the schedule reproducible: flood arrival jitter and
	// edge selection derive from it.
	Seed int64
	// BudgetBytes is the shared governor budget for the whole tree —
	// deliberately small so the flood is a memory squeeze (default
	// 128 KiB).
	BudgetBytes int64
	// MaxClients caps display sessions per broker (default 4).
	MaxClients int
	// BaseViewers is the number of well-behaved viewers attached
	// before the flood, spread round-robin over the edges (default 4).
	BaseViewers int
	// FloodFactor scales the flood: FloodFactor*BaseViewers slow
	// clients dial in during the flood phase (default 5).
	FloodFactor int
	// FrameInterval is the renderer cadence (default 25ms).
	FrameInterval time.Duration
	// BaselineFrames / FloodFrames size the unloaded and flooded
	// phases in frames (defaults 40 / 60).
	BaselineFrames int
	FloodFrames    int
	// StallDuration is how long the scripted partition starves the
	// impaired edge's upstream writes (default 200ms).
	StallDuration time.Duration
	// RecoverySLO bounds how long viewers may take to see post-kill
	// frames again after the hard link kill (default 3s).
	RecoverySLO time.Duration
	// Side is the synthetic frame edge length in pixels (default 64).
	Side int
	// Logf receives phase-by-phase narration (nil silences).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BudgetBytes <= 0 {
		c.BudgetBytes = 128 << 10
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4
	}
	if c.BaseViewers <= 0 {
		c.BaseViewers = 4
	}
	if c.FloodFactor <= 0 {
		c.FloodFactor = 5
	}
	if c.FrameInterval <= 0 {
		c.FrameInterval = 25 * time.Millisecond
	}
	if c.BaselineFrames <= 0 {
		c.BaselineFrames = 40
	}
	if c.FloodFrames <= 0 {
		c.FloodFrames = 60
	}
	if c.StallDuration <= 0 {
		c.StallDuration = 200 * time.Millisecond
	}
	if c.RecoverySLO <= 0 {
		c.RecoverySLO = 3 * time.Second
	}
	if c.Side <= 0 {
		c.Side = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Invariant is one named pass/fail check with its evidence.
type Invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Result is everything the soak observed, JSON-shaped for
// BENCH_overload.json.
type Result struct {
	Seed         int64 `json:"seed"`
	BudgetBytes  int64 `json:"budget_bytes"`
	BaseViewers  int   `json:"base_viewers"`
	FloodClients int   `json:"flood_clients"`

	Admitted    int64            `json:"admitted"`
	Rejected    int64            `json:"rejected"`
	DialErrors  int64            `json:"dial_errors"`
	Shed        int64            `json:"shed"`
	Transitions map[string]int64 `json:"transitions"`

	PeakUsedBytes int64 `json:"peak_used_bytes"`
	ResidualBytes int64 `json:"residual_bytes"`

	BaselineP99MS float64 `json:"baseline_p99_ms"`
	LoadedP99MS   float64 `json:"loaded_p99_ms"`
	AgeBoundMS    float64 `json:"age_bound_ms"`

	Kills         int     `json:"kills"`
	ReadStalls    int64   `json:"read_stalls"`
	RecoveryMS    float64 `json:"recovery_ms"`
	RecoverySLOMS float64 `json:"recovery_slo_ms"`

	WatchdogStalls   int64  `json:"watchdog_stalls"`
	LeakedGoroutines int    `json:"leaked_goroutines"`
	Panic            string `json:"panic,omitempty"`

	Invariants []Invariant `json:"invariants"`
	Passed     bool        `json:"passed"`
}

func (r *Result) check(name string, ok bool, format string, args ...any) {
	r.Invariants = append(r.Invariants, Invariant{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	if !ok {
		r.Passed = false
	}
}

// phase markers for the age-recording viewers.
const (
	phaseBaseline = iota
	phaseFlood
	phaseFault
	phaseDone
)

// Run executes the soak schedule and returns the observed result. An
// error means the harness itself could not stand up (listen/dial
// failures); invariant trips are reported in Result, not as errors.
func Run(cfg Config) (res *Result, err error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res = &Result{
		Seed:          cfg.Seed,
		BudgetBytes:   cfg.BudgetBytes,
		BaseViewers:   cfg.BaseViewers,
		FloodClients:  cfg.FloodFactor * cfg.BaseViewers,
		RecoverySLOMS: float64(cfg.RecoverySLO) / float64(time.Millisecond),
		Passed:        true,
	}
	defer func() {
		if r := recover(); r != nil {
			res.Panic = fmt.Sprint(r)
			res.check("no-panic", false, "panicked: %v", r)
		}
	}()
	before := goroutineIDs()

	gov := guard.NewGovernor(guard.GovernorConfig{
		BudgetBytes:  cfg.BudgetBytes,
		MaxClients:   cfg.MaxClients,
		RetryAfter:   50 * time.Millisecond,
		ShedInterval: 100 * time.Millisecond,
		Logf:         cfg.Logf,
	})

	// One edge's upstream link carries every scripted fault: a mild
	// recurring read stall for the whole run (the WAN-flavored
	// impairment), a write partition window, and finally a hard kill.
	inj := fault.New(fault.Plan{ReadStallEveryBytes: 64 << 10, ReadStall: 2 * time.Millisecond})
	tree, err := relay.BuildTree(relay.TreeSpec{
		Tiers: 2, FanOut: 2,
		Stream: stream.Config{Target: cfg.FrameInterval, QueueDepth: 3, CacheFrames: 4},
		Retry: transport.RetryPolicy{
			Base: 20 * time.Millisecond, Max: 200 * time.Millisecond,
			Factor: 2, MaxAttempts: 8,
		},
		FailoverBackoff: 25 * time.Millisecond,
		Guard:           gov,
		WrapUpstreamFor: func(tier, index int) func(net.Conn) net.Conn {
			if tier == 1 && index == 0 {
				return inj.Wrapper()
			}
			return nil
		},
		Logf: cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: build tree: %w", err)
	}
	treeClosed := false
	defer func() {
		if !treeClosed {
			tree.Close()
		}
	}()

	// Watchdog over every broker loop in the tree: a wedged lock
	// holder anywhere shows up as a stall count.
	wd := guard.NewWatchdog(100*time.Millisecond, cfg.Logf)
	wd.Register("root", time.Second, tree.Root.Probe)
	for i, n := range tree.Nodes() {
		wd.Register(fmt.Sprintf("relay-%d", i), time.Second, n.Probe)
	}
	defer wd.Close()

	// Shared send-time ledger: the renderer stamps each frame ID on
	// send, viewers look the stamp up on display to compute frame age.
	var sentMu sync.Mutex
	sent := map[uint32]time.Time{}
	stampOf := func(id uint32) (time.Time, bool) {
		sentMu.Lock()
		defer sentMu.Unlock()
		t, ok := sent[id]
		return t, ok
	}

	var phase atomic.Int32
	var killNano atomic.Int64
	var agesMu sync.Mutex
	var baseAges, loadAges []time.Duration
	recovered := make([]atomic.Int64, cfg.BaseViewers)
	// closedNano[i] records when base viewer i's frame channel closed
	// (0 = still open). A base viewer shed by the governor at extreme
	// pressure is designed ladder behavior, so recovery is judged only
	// over viewers still attached when the kill lands.
	closedNano := make([]atomic.Int64, cfg.BaseViewers)

	// Base viewers: well-behaved clients attached before the flood,
	// round-robin over the edges. Each drains promptly and records the
	// age of every frame it displays into the current phase's bucket.
	edges := tree.EdgeAddrs()
	var baseViewers []*display.Viewer
	closeViewers := func(vs []*display.Viewer) {
		for _, v := range vs {
			v.Close()
		}
	}
	defer func() { closeViewers(baseViewers) }()
	for i := 0; i < cfg.BaseViewers; i++ {
		ep, err := transport.Dial(edges[i%len(edges)], transport.RoleDisplay, nil)
		if err != nil {
			return nil, fmt.Errorf("soak: base viewer %d: %w", i, err)
		}
		v := display.NewViewer(ep)
		baseViewers = append(baseViewers, v)
		idx := i
		go func() {
			for fr := range v.Frames() {
				t0, ok := stampOf(fr.ID)
				if !ok {
					continue
				}
				age := time.Since(t0)
				switch phase.Load() {
				case phaseBaseline:
					agesMu.Lock()
					baseAges = append(baseAges, age)
					agesMu.Unlock()
				case phaseFlood:
					agesMu.Lock()
					loadAges = append(loadAges, age)
					agesMu.Unlock()
				}
				if k := killNano.Load(); k != 0 && t0.UnixNano() > k {
					recovered[idx].CompareAndSwap(0, time.Now().UnixNano())
				}
			}
			closedNano[idx].Store(time.Now().UnixNano())
		}()
	}

	// Renderer: one synthetic frame every FrameInterval for the whole
	// run, with the governor's high-water mark sampled on each send.
	rend, err := transport.Dial(tree.Root.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		return nil, fmt.Errorf("soak: renderer: %w", err)
	}
	frame := img.NewFrame(cfg.Side, cfg.Side)
	for i := range frame.Pix {
		frame.Pix[i] = byte(rng.Intn(256))
	}
	data, err := compress.Raw{}.EncodeFrame(frame)
	if err != nil {
		return nil, fmt.Errorf("soak: encode seed frame: %w", err)
	}
	var peakUsed atomic.Int64
	var sendErr atomic.Pointer[error]
	stopSend := make(chan struct{})
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		defer rend.Close()
		tick := time.NewTicker(cfg.FrameInterval)
		defer tick.Stop()
		for id := uint32(1); ; id++ {
			select {
			case <-stopSend:
				return
			case <-tick.C:
			}
			im := &transport.ImageMsg{
				FrameID:    id,
				PieceCount: 1,
				X1:         uint16(cfg.Side), Y1: uint16(cfg.Side),
				W: uint16(cfg.Side), H: uint16(cfg.Side),
				Codec: "raw",
				Data:  data,
			}
			sentMu.Lock()
			sent[id] = time.Now()
			sentMu.Unlock()
			if err := rend.SendImage(im); err != nil {
				sendErr.Store(&err)
				return
			}
			if u := gov.Used(); u > peakUsed.Load() {
				peakUsed.Store(u)
			}
		}
	}()

	// Phase 1: unloaded baseline.
	cfg.Logf("soak: baseline, %d frames at %v", cfg.BaselineFrames, cfg.FrameInterval)
	time.Sleep(time.Duration(cfg.BaselineFrames) * cfg.FrameInterval)

	// Phase 2: client flood — FloodFactor x the base population dials
	// in with seeded jitter, and every admitted flood client reads
	// slowly, holding pacer queues full (the memory squeeze).
	phase.Store(phaseFlood)
	floodN := res.FloodClients
	floodWindow := time.Duration(cfg.FloodFrames/2) * cfg.FrameInterval
	cfg.Logf("soak: flood, %d clients over %v", floodN, floodWindow)
	var admitted, rejected, dialErrs atomic.Int64
	var floodMu sync.Mutex
	var floodViewers []*display.Viewer
	defer func() {
		floodMu.Lock()
		vs := floodViewers
		floodViewers = nil
		floodMu.Unlock()
		closeViewers(vs)
	}()
	var floodWG sync.WaitGroup
	for i := 0; i < floodN; i++ {
		addr := edges[rng.Intn(len(edges))]
		delay := time.Duration(rng.Int63n(int64(floodWindow)))
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			time.Sleep(delay)
			ep, err := transport.Dial(addr, transport.RoleDisplay, nil)
			if err != nil {
				if errors.Is(err, transport.ErrBusy) {
					rejected.Add(1)
				} else {
					dialErrs.Add(1)
				}
				return
			}
			admitted.Add(1)
			v := display.NewViewer(ep)
			floodMu.Lock()
			floodViewers = append(floodViewers, v)
			floodMu.Unlock()
			go func() {
				for range v.Frames() {
					time.Sleep(4 * cfg.FrameInterval)
				}
			}()
		}()
	}
	time.Sleep(time.Duration(cfg.FloodFrames) * cfg.FrameInterval)
	floodWG.Wait()

	// Phase 3: scripted faults while the flood is still attached.
	// First a write partition on the impaired edge's upstream link
	// (ack starvation — frames must keep flowing and nothing may
	// deadlock), then a hard kill of every fault-wrapped connection;
	// the edge must re-attach and its viewers resume within the SLO.
	phase.Store(phaseFault)
	cfg.Logf("soak: partition for %v", cfg.StallDuration)
	inj.Partition()
	time.Sleep(cfg.StallDuration)
	inj.Heal()
	time.Sleep(2 * cfg.FrameInterval)

	killAt := time.Now()
	killNano.Store(killAt.UnixNano())
	kills := inj.KillAll()
	cfg.Logf("soak: killed %d upstream link(s)", kills)
	recoveryDeadline := killAt.Add(cfg.RecoverySLO + time.Second)
	// Viewers whose channel was already closed at kill time (shed
	// under extreme pressure) are out of the recovery population.
	surviving := func(i int) bool {
		c := closedNano[i].Load()
		return c == 0 || c > killAt.UnixNano()
	}
	allRecovered := func() (int, bool) {
		n, all := 0, true
		for i := range recovered {
			if !surviving(i) {
				continue
			}
			n++
			if recovered[i].Load() == 0 {
				all = false
			}
		}
		return n, all
	}
	for {
		if _, all := allRecovered(); all || !time.Now().Before(recoveryDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var recovery time.Duration
	survivors, recoveredAll := allRecovered()
	for i := range recovered {
		if ts := recovered[i].Load(); ts != 0 {
			if d := time.Unix(0, ts).Sub(killAt); d > recovery {
				recovery = d
			}
		}
	}

	// Teardown: stop the renderer, detach every client, fold the tree,
	// then hold the run to the drain and leak invariants.
	phase.Store(phaseDone)
	close(stopSend)
	<-sendDone
	floodMu.Lock()
	vs := floodViewers
	floodViewers = nil
	floodMu.Unlock()
	closeViewers(vs)
	closeViewers(baseViewers)
	baseViewers = nil
	stalls := wd.Stalls()
	healthy := wd.Status().Healthy
	wd.Close()
	tree.Close()
	treeClosed = true

	residual := gov.Used()
	for deadline := time.Now().Add(2 * time.Second); residual != 0 && time.Now().Before(deadline); {
		time.Sleep(20 * time.Millisecond)
		residual = gov.Used()
	}
	leaked := newReproGoroutines(before)
	for deadline := time.Now().Add(2 * time.Second); len(leaked) > 0 && time.Now().Before(deadline); {
		time.Sleep(20 * time.Millisecond)
		leaked = newReproGoroutines(before)
	}

	// Fill in the observations and judge the invariants.
	status := gov.Status()
	res.Admitted = admitted.Load()
	res.Rejected = rejected.Load()
	res.DialErrors = dialErrs.Load()
	res.Shed = gov.ShedCount()
	res.Transitions = status.Transitions
	res.PeakUsedBytes = peakUsed.Load()
	res.ResidualBytes = residual
	res.Kills = kills
	res.ReadStalls = inj.Stats().Stalls
	res.RecoveryMS = float64(recovery) / float64(time.Millisecond)
	res.WatchdogStalls = stalls
	res.LeakedGoroutines = len(leaked)

	agesMu.Lock()
	basePhase, loadPhase := append([]time.Duration(nil), baseAges...), append([]time.Duration(nil), loadAges...)
	agesMu.Unlock()
	baseP99, loadP99 := p99(basePhase), p99(loadPhase)
	bound := 2 * baseP99
	if m := 2 * cfg.FrameInterval; bound < m {
		bound = m
	}
	res.BaselineP99MS = float64(baseP99) / float64(time.Millisecond)
	res.LoadedP99MS = float64(loadP99) / float64(time.Millisecond)
	res.AgeBoundMS = float64(bound) / float64(time.Millisecond)

	res.check("no-panic", true, "run completed")
	if serr := sendErr.Load(); serr != nil {
		res.check("renderer-alive", false, "renderer send failed mid-run: %v", *serr)
	} else {
		res.check("renderer-alive", true, "renderer streamed the full schedule")
	}
	res.check("admission-engaged", res.Rejected > 0,
		"flood: %d admitted, %d rejected busy, %d dial errors", res.Admitted, res.Rejected, res.DialErrors)
	degraded := int64(0)
	for name, n := range res.Transitions {
		if name != guard.LevelName(0) {
			degraded += n
		}
	}
	res.check("degradation-engaged", degraded > 0 || res.Shed > 0,
		"ladder transitions %v, shed %d", res.Transitions, res.Shed)
	res.check("memory-bounded", res.PeakUsedBytes <= 2*cfg.BudgetBytes,
		"peak %d bytes vs budget %d (bound 2x)", res.PeakUsedBytes, cfg.BudgetBytes)
	res.check("frame-age", len(basePhase) > 0 && len(loadPhase) > 0 && loadP99 <= bound,
		"baseline p99 %.1fms (%d samples), loaded p99 %.1fms (%d samples), bound %.1fms",
		res.BaselineP99MS, len(basePhase), res.LoadedP99MS, len(loadPhase), res.AgeBoundMS)
	res.check("recovery", kills > 0 && survivors > 0 && recoveredAll && recovery <= cfg.RecoverySLO,
		"%d kills, %d/%d surviving viewers recovered=%v, worst recovery %.0fms vs SLO %.0fms",
		kills, survivors, cfg.BaseViewers, recoveredAll, res.RecoveryMS, res.RecoverySLOMS)
	res.check("watchdog", healthy && stalls == 0, "healthy=%v stalls=%d", healthy, stalls)
	res.check("budget-drained", residual == 0, "residual %d bytes after teardown", residual)
	res.check("no-goroutine-leaks", len(leaked) == 0,
		"%d goroutines still running repro code%s", len(leaked), stackHeads(leaked))
	return res, nil
}

// p99 returns the 99th-percentile duration (0 for an empty sample).
func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// goroutineIDs snapshots the IDs of every live goroutine.
func goroutineIDs() map[int64]bool {
	out := map[int64]bool{}
	for id := range goroutineStacks() {
		out[id] = true
	}
	return out
}

// newReproGoroutines returns the stacks of goroutines started since
// the snapshot that are still executing this repo's code — the soak's
// own machinery excluded.
func newReproGoroutines(before map[int64]bool) []string {
	var out []string
	for id, stack := range goroutineStacks() {
		if before[id] {
			continue
		}
		if !strings.Contains(stack, "repro/") {
			continue
		}
		if strings.Contains(stack, "internal/soak.") {
			continue
		}
		out = append(out, stack)
	}
	return out
}

// stackHeads compresses leaked stacks into their first frames for the
// invariant evidence line.
func stackHeads(stacks []string) string {
	if len(stacks) == 0 {
		return ""
	}
	var heads []string
	for _, s := range stacks {
		lines := strings.SplitN(s, "\n", 4)
		head := lines[0]
		if len(lines) > 1 {
			head += " at " + strings.TrimSpace(lines[1])
		}
		heads = append(heads, head)
	}
	return ": " + strings.Join(heads, "; ")
}

// goroutineStacks parses a full runtime stack dump into one entry per
// goroutine ID.
func goroutineStacks() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := map[int64]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		rest, ok := strings.CutPrefix(g, "goroutine ")
		if !ok {
			continue
		}
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		id, err := strconv.ParseInt(rest[:sp], 10, 64)
		if err != nil {
			continue
		}
		out[id] = g
	}
	return out
}
