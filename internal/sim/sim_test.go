package sim

import (
	"io"
	"strings"
	"testing"
	"time"

	_ "repro/internal/compress/codecs"
	"repro/internal/vol"
	"repro/internal/wan"
)

// paperWorkload builds a hand-specified workload in the paper's
// regime: jet dataset on the RWCP cluster, 128 steps, 256x256 images.
func paperWorkload(steps int) Workload {
	return Workload{
		Steps:                steps,
		StepBytes:            129 * 129 * 104 * 4,
		VolumeMB:             6.9,
		ImageW:               256,
		ImageH:               256,
		T1Render:             15 * time.Second,
		CompressSecPerByte:   2e-9,
		CompressRatio:        0.015,
		DecompressSecPerByte: 4e-9,
		Link:                 wan.JapanUCD(),
	}
}

func TestValidate(t *testing.T) {
	w := paperWorkload(8)
	cases := []Config{
		{Machine: RWCP(), Work: w, P: 0, L: 1},
		{Machine: RWCP(), Work: w, P: 8, L: 0},
		{Machine: RWCP(), Work: w, P: 8, L: 16},
		{Machine: RWCP(), Work: w, P: 8, L: 3}, // not divisible
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	bad := w
	bad.Steps = 0
	if _, err := Run(Config{Machine: RWCP(), Work: bad, P: 8, L: 2}); err == nil {
		t.Error("zero steps accepted")
	}
	bad = w
	bad.CompressRatio = 0
	if _, err := Run(Config{Machine: RWCP(), Work: bad, P: 8, L: 2}); err == nil {
		t.Error("zero ratio accepted")
	}
}

func TestMetricsBasicSanity(t *testing.T) {
	res, err := Run(Config{Machine: RWCP(), Work: paperWorkload(32), P: 32, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.StartupLatency <= 0 || res.Overall <= res.StartupLatency {
		t.Fatalf("startup %v overall %v", res.StartupLatency, res.Overall)
	}
	if res.InterFrameDelay <= 0 {
		t.Fatalf("inter-frame %v", res.InterFrameDelay)
	}
	if len(res.Arrivals) != 32 {
		t.Fatalf("%d arrivals", len(res.Arrivals))
	}
	// Overall equals last display time and must be >= every arrival.
	for _, a := range res.Arrivals {
		if a > res.Overall {
			t.Fatalf("arrival %v after overall %v", a, res.Overall)
		}
	}
}

// Figure 6 shape: an optimal L exists strictly between 1 and P.
func TestFig6InteriorOptimum(t *testing.T) {
	for _, P := range []int{16, 32, 64} {
		var ls []int
		for l := 1; l <= P; l *= 2 {
			ls = append(ls, l)
		}
		overall := map[int]time.Duration{}
		for _, l := range ls {
			res, err := Run(Config{Machine: RWCP(), Work: paperWorkload(128), P: P, L: l})
			if err != nil {
				t.Fatal(err)
			}
			overall[l] = res.Overall
		}
		best := ls[0]
		for _, l := range ls {
			if overall[l] < overall[best] {
				best = l
			}
		}
		if best != 4 {
			t.Errorf("P=%d: optimum at L=%d, paper reports 4: %v", P, best, overall)
		}
		// L=1 (no pipelining) must be clearly worse than the optimum.
		if float64(overall[1]) < 1.1*float64(overall[best]) {
			t.Errorf("P=%d: L=1 (%v) not clearly worse than optimum (%v)", P, overall[1], overall[best])
		}
	}
}

// Figure 7 shape: start-up latency increases monotonically with L.
func TestFig7StartupMonotone(t *testing.T) {
	const P = 32
	var prev time.Duration
	for l := 1; l <= P; l *= 2 {
		res, err := Run(Config{Machine: RWCP(), Work: paperWorkload(64), P: P, L: l})
		if err != nil {
			t.Fatal(err)
		}
		if res.StartupLatency < prev {
			t.Fatalf("startup decreased at L=%d: %v < %v", l, res.StartupLatency, prev)
		}
		prev = res.StartupLatency
	}
}

// Inter-frame delay tracks overall time (same argmin region).
func TestFig7InterFrameTracksOverall(t *testing.T) {
	const P = 32
	type point struct {
		overall, ifd time.Duration
	}
	pts := map[int]point{}
	for l := 1; l <= P; l *= 2 {
		res, err := Run(Config{Machine: RWCP(), Work: paperWorkload(128), P: P, L: l})
		if err != nil {
			t.Fatal(err)
		}
		pts[l] = point{res.Overall, res.InterFrameDelay}
	}
	bestO, bestI := 1, 1
	for l, p := range pts {
		if p.overall < pts[bestO].overall {
			bestO = l
		}
		if p.ifd < pts[bestI].ifd {
			bestI = l
		}
	}
	// "The inter-frame delay exhibits a somewhat similar curve":
	// the IFD at the overall optimum must be within 5% of the best
	// IFD anywhere (the curve can be flat across the plateau, so
	// argmin positions alone are not meaningful).
	atOpt := pts[bestO].ifd.Seconds()
	best := pts[bestI].ifd.Seconds()
	if atOpt > 1.05*best {
		t.Fatalf("IFD at overall optimum (L=%d: %.3fs) not near best IFD (L=%d: %.3fs)",
			bestO, atOpt, bestI, best)
	}
}

// Compression must cut transport time roughly by the compression
// ratio; the X baseline (raw) is transport-dominated at large sizes.
func TestCompressionReducesTransport(t *testing.T) {
	w := paperWorkload(16)
	raw := w
	raw.CompressRatio = 1
	raw.CompressSecPerByte = 0
	raw.DecompressSecPerByte = 0
	cRes, err := Run(Config{Machine: RWCP(), Work: w, P: 16, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := Run(Config{Machine: RWCP(), Work: raw, P: 16, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cRes.TransportPerFrame*10 > rRes.TransportPerFrame {
		t.Fatalf("compressed transport %v not ≪ raw %v", cRes.TransportPerFrame, rRes.TransportPerFrame)
	}
	if rRes.Overall <= cRes.Overall {
		t.Fatalf("raw overall %v not worse than compressed %v", rRes.Overall, cRes.Overall)
	}
}

func TestCachePenalty(t *testing.T) {
	m := RWCP()
	if cachePenalty(m, 0.1) != 1 {
		t.Fatal("small working set penalized")
	}
	if cachePenalty(m, 8) <= 1 {
		t.Fatal("large working set not penalized")
	}
	if cachePenalty(Machine{}, 100) != 1 {
		t.Fatal("zero cache model must be neutral")
	}
}

func TestBinarySwapTimeGrowsWithG(t *testing.T) {
	m := RWCP()
	t2 := binarySwapTime(2, 256*256*16, m)
	t16 := binarySwapTime(16, 256*256*16, m)
	if t2 <= 0 || t16 <= t2 {
		t.Fatalf("swap times %v %v", t2, t16)
	}
	if binarySwapTime(1, 1000, m) != 0 {
		t.Fatal("single node swap must be free")
	}
}

func TestCalibrateSmoke(t *testing.T) {
	cal, err := Calibrate(CalibrationOptions{Scale: 0.15, ImageSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	if cal.SecPerSample <= 0 || cal.SecPerRay <= 0 {
		t.Fatalf("%+v", cal)
	}
	if cal.Ratio <= 0 || cal.Ratio >= 1 {
		t.Fatalf("ratio %v", cal.Ratio)
	}
	dims := vol.Dims{NX: 129, NY: 129, NZ: 104}
	t1 := cal.EstimateT1(dims, 256, 256, 0.8)
	if t1 <= 0 {
		t.Fatal("T1 estimate non-positive")
	}
	// Bigger images cost more.
	if cal.EstimateT1(dims, 512, 512, 0.8) <= t1 {
		t.Fatal("T1 not increasing with image size")
	}
	m, paperT1 := cal.ScaleToPaper(RWCP(), dims)
	if m.CPUScale <= 0 || paperT1 != PaperT1 {
		t.Fatalf("scale %v t1 %v", m.CPUScale, paperT1)
	}
	imb := cal.MeasuredImbalance(dims)
	if imb(1) != 1 {
		t.Fatal("imbalance(1) != 1")
	}
	if imb(8) < 1 {
		t.Fatalf("imbalance(8) = %v < 1", imb(8))
	}
	w := cal.WorkloadFor(m, dims, 16, 256, 256)
	if w.T1Render != PaperT1 {
		t.Fatalf("workload T1 %v", w.T1Render)
	}
	w.Link = wan.JapanUCD()
	if _, err := Run(Config{Machine: m, Work: w, P: 16, L: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceCached(t *testing.T) {
	cal := &Calibration{}
	f := cal.MeasuredImbalance(vol.Dims{NX: 64, NY: 64, NZ: 64})
	a := f(8)
	b := f(8)
	if a != b {
		t.Fatal("cache broken")
	}
}

func BenchmarkRunPipeline(b *testing.B) {
	cfg := Config{Machine: RWCP(), Work: paperWorkload(128), P: 64, L: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// §7.1 parallel-I/O extension: with per-group input paths the
// input-bound plateau lifts and overall time improves (never worsens).
func TestParallelInputImproves(t *testing.T) {
	w := paperWorkload(64)
	for _, l := range []int{2, 4, 8} {
		serial, err := Run(Config{Machine: RWCP(), Work: w, P: 32, L: l})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Run(Config{Machine: RWCP(), Work: w, P: 32, L: l, ParallelInput: true})
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Overall > serial.Overall {
			t.Fatalf("L=%d: parallel input worse: %v > %v", l, parallel.Overall, serial.Overall)
		}
	}
	// At the input-bound optimum the gain must be substantial.
	serial, _ := Run(Config{Machine: RWCP(), Work: w, P: 32, L: 4})
	parallel, _ := Run(Config{Machine: RWCP(), Work: w, P: 32, L: 4, ParallelInput: true})
	if float64(parallel.Overall) > 0.95*float64(serial.Overall) {
		t.Fatalf("parallel input gain too small: %v vs %v", parallel.Overall, serial.Overall)
	}
}

func TestTraceAndGantt(t *testing.T) {
	res, err := Run(Config{Machine: RWCP(), Work: paperWorkload(8), P: 8, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 8 {
		t.Fatalf("%d trace rows", len(res.Trace))
	}
	for i, s := range res.Trace {
		if s.Step != i {
			t.Fatalf("trace step %d at row %d", s.Step, i)
		}
		if !(s.InputStart <= s.InputEnd && s.InputEnd <= s.RenderStart &&
			s.RenderStart <= s.RenderEnd && s.RenderEnd <= s.SendStart &&
			s.SendStart <= s.SendEnd && s.SendEnd <= s.Arrive) {
			t.Fatalf("row %d intervals out of order: %+v", i, s)
		}
		if s.Group != i%2 {
			t.Fatalf("row %d group %d", i, s.Group)
		}
	}
	out := GanttString(res.Trace, 60)
	if !strings.Contains(out, "#") || !strings.Contains(out, "*") || !strings.Contains(out, "step   0") {
		t.Fatalf("gantt output malformed:\n%s", out)
	}
	// Error paths.
	if err := Gantt(io.Discard, nil, 60); err == nil {
		t.Fatal("empty trace accepted")
	}
	if err := Gantt(io.Discard, res.Trace, 4); err == nil {
		t.Fatal("tiny width accepted")
	}
}
