package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/wan"
)

// RelayTreeConfig describes one relay-tree broadcast scenario for the
// analytic model in SimulateRelayTree: Viewers display clients spread
// round-robin over the Mix of region link profiles, served either
// directly by the root daemon (Tiers=1, the flat baseline) or through a
// tree of relay daemons (Tiers-1 relay levels, each interior node
// fanning out to FanOut children).
//
// The model's placement assumption is the CDN one: each tier-1 relay
// sits inside one region, so the wide-area link of that region is
// crossed once per tier-1 relay instead of once per viewer, and every
// hop below tier 1 — relay to relay, relay to viewer — rides the
// intra-site LAN profile. Per-link adaptive quality is modelled by a
// rung ladder of encoded-size fractions: each link carries the largest
// rung whose transfer fits the Target budget.
type RelayTreeConfig struct {
	// Viewers is the display population.
	Viewers int
	// Mix holds the region link profiles; viewer i belongs to region
	// i%len(Mix). Trees need FanOut >= len(Mix) so every region gets at
	// least one tier-1 relay.
	Mix []wan.Profile
	// Tiers counts daemon levels including the root (1 = flat).
	Tiers int
	// FanOut is each interior node's child count (relay levels only;
	// the edge level absorbs however many viewers remain).
	FanOut int
	// FrameBytes is the full-quality encoded frame size (rung 1.0).
	FrameBytes int
	// Frames is the animation length.
	Frames int
	// Target is the per-link frame time budget that picks each link's
	// quality rung.
	Target time.Duration
	// EncodeTime and DecodeTime are the per-frame codec costs at one
	// operating point.
	EncodeTime time.Duration
	DecodeTime time.Duration
	// NodeBandwidth is each daemon's NIC serialization rate in bytes/s:
	// a node fanning a frame to C children pushes their copies out one
	// after another, so child k waits behind the first k copies. This
	// is the term that sinks the flat topology at large viewer counts.
	NodeBandwidth float64
	// LAN is the intra-site profile for hops below tier 1.
	LAN wan.Profile
}

// rungs is the modelled quality ladder: encoded-size fractions of the
// full-quality frame, highest first (mirrors the stream ladder's
// jpeg+lzo@85 … jpeg@15 size spread).
var rungs = []float64{1.0, 0.65, 0.4, 0.25, 0.12}

func (c RelayTreeConfig) withDefaults() RelayTreeConfig {
	if c.Frames <= 0 {
		c.Frames = 1
	}
	if c.Target <= 0 {
		c.Target = 100 * time.Millisecond
	}
	if c.EncodeTime <= 0 {
		c.EncodeTime = 2 * time.Millisecond
	}
	if c.DecodeTime <= 0 {
		c.DecodeTime = time.Millisecond
	}
	if c.NodeBandwidth <= 0 {
		c.NodeBandwidth = 125e6 // 1 Gbit/s NIC
	}
	if c.LAN.Name == "" {
		c.LAN = wan.LAN()
	}
	return c
}

func (c RelayTreeConfig) validate() error {
	if c.Viewers < 1 {
		return fmt.Errorf("sim: relay tree needs viewers, have %d", c.Viewers)
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("sim: relay tree needs at least one link profile")
	}
	if c.Tiers < 1 {
		return fmt.Errorf("sim: relay tree needs >= 1 tier, have %d", c.Tiers)
	}
	if c.Tiers > 1 && c.FanOut < len(c.Mix) {
		return fmt.Errorf("sim: fan-out %d < %d regions — some regions would have no relay", c.FanOut, len(c.Mix))
	}
	if c.FrameBytes <= 0 {
		return fmt.Errorf("sim: relay tree needs a frame size, have %d", c.FrameBytes)
	}
	return nil
}

// pickRung returns the largest ladder fraction whose encoded bytes move
// through the link within the target, or the smallest rung when even
// that does not fit (the controller's floor).
func pickRung(link wan.Profile, frameBytes int, target time.Duration) float64 {
	for _, r := range rungs {
		if link.TransferTime(int(r*float64(frameBytes))) <= target {
			return r
		}
	}
	return rungs[len(rungs)-1]
}

// RelayTierStat summarizes one daemon level of the modelled tree.
type RelayTierStat struct {
	// Tier 0 is the root; the last tier is the edge level.
	Tier  int `json:"tier"`
	Nodes int `json:"nodes"`
	// EncodesPerFrame sums, over the tier's nodes, the distinct child
	// operating points — what the encode-once cache actually encodes.
	EncodesPerFrame int64 `json:"encodes_per_frame"`
	// EgressBytesPerFrame sums every child copy the tier sends per
	// frame.
	EgressBytesPerFrame int64 `json:"egress_bytes_per_frame"`
}

// RelayTreeResult is the analytic outcome of one scenario.
type RelayTreeResult struct {
	Viewers int `json:"viewers"`
	Tiers   int `json:"tiers"`
	FanOut  int `json:"fan_out"`
	Frames  int `json:"frames"`
	// RootEgressBytes is the whole animation's byte count leaving the
	// root — the wide-area cost the relay tree exists to cut.
	RootEgressBytes int64 `json:"root_egress_bytes"`
	// TotalBytes sums egress over every tier (trees move more bytes in
	// aggregate; they just move them near the viewers).
	TotalBytes int64           `json:"total_bytes"`
	TierStats  []RelayTierStat `json:"tier_stats"`
	// Frame age percentiles across viewers: encode, serialization
	// queueing, transfer and decode summed along each viewer's path.
	P50FrameAge  time.Duration `json:"p50_frame_age_ns"`
	P99FrameAge  time.Duration `json:"p99_frame_age_ns"`
	MaxFrameAge  time.Duration `json:"max_frame_age_ns"`
	MeanFrameAge time.Duration `json:"mean_frame_age_ns"`
}

// SimulateRelayTree evaluates the analytic relay-tree model for one
// configuration. Everything is closed-form and deterministic: the same
// config always returns the same result.
func SimulateRelayTree(cfg RelayTreeConfig) (RelayTreeResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return RelayTreeResult{}, err
	}
	if cfg.Tiers == 1 {
		return simulateFlat(cfg), nil
	}
	return simulateTree(cfg), nil
}

// simulateFlat: every viewer is a direct child of the root; the root
// serializes one copy per viewer onto its NIC and crosses each viewer's
// wide-area link individually.
func simulateFlat(cfg RelayTreeConfig) RelayTreeResult {
	nicSec := 1 / cfg.NodeBandwidth
	ages := make([]float64, cfg.Viewers)
	points := map[float64]struct{}{}
	var egress int64
	queueSec := 0.0
	for i := 0; i < cfg.Viewers; i++ {
		link := cfg.Mix[i%len(cfg.Mix)]
		rung := pickRung(link, cfg.FrameBytes, cfg.Target)
		points[rung] = struct{}{}
		bytes := int64(rung * float64(cfg.FrameBytes))
		// Age: root encode + wait behind the copies already queued +
		// this copy's WAN transfer + viewer decode.
		ages[i] = cfg.EncodeTime.Seconds() + queueSec +
			link.TransferTime(int(bytes)).Seconds() + cfg.DecodeTime.Seconds()
		queueSec += float64(bytes) * nicSec
		egress += bytes
	}
	root := RelayTierStat{Tier: 0, Nodes: 1, EncodesPerFrame: int64(len(points)), EgressBytesPerFrame: egress}
	res := RelayTreeResult{
		Viewers: cfg.Viewers, Tiers: 1, FanOut: 0, Frames: cfg.Frames,
		RootEgressBytes: egress * int64(cfg.Frames),
		TotalBytes:      egress * int64(cfg.Frames),
		TierStats:       []RelayTierStat{root},
	}
	fillAges(&res, ages)
	return res
}

// simulateTree: tier-1 relays are placed one region each (round-robin
// over the mix), the viewers of a region split round-robin across that
// region's edge relays, and every hop below tier 1 is a LAN hop.
func simulateTree(cfg RelayTreeConfig) RelayTreeResult {
	nicSec := 1 / cfg.NodeBandwidth
	regions := len(cfg.Mix)
	lanRung := pickRung(cfg.LAN, cfg.FrameBytes, cfg.Target)
	lanBytes := int64(lanRung * float64(cfg.FrameBytes))
	lanHop := cfg.LAN.TransferTime(int(lanBytes)).Seconds()

	// Root tier: one WAN link per tier-1 relay, rung per region.
	t1Rung := make([]float64, cfg.FanOut)
	t1Age := make([]float64, cfg.FanOut) // frame age on arrival at tier-1 relay
	rootPoints := map[float64]struct{}{}
	var rootEgress int64
	queueSec := 0.0
	for j := 0; j < cfg.FanOut; j++ {
		link := cfg.Mix[j%regions]
		rung := pickRung(link, cfg.FrameBytes, cfg.Target)
		t1Rung[j] = rung
		rootPoints[rung] = struct{}{}
		bytes := int64(rung * float64(cfg.FrameBytes))
		t1Age[j] = cfg.EncodeTime.Seconds() + queueSec + link.TransferTime(int(bytes)).Seconds()
		queueSec += float64(bytes) * nicSec
		rootEgress += bytes
	}
	tiers := []RelayTierStat{{Tier: 0, Nodes: 1, EncodesPerFrame: int64(len(rootPoints)), EgressBytesPerFrame: rootEgress}}

	// Interior relay tiers (levels 1 .. Tiers-2): every node re-encodes
	// once (all its children share the LAN rung) and fans out FanOut
	// LAN copies. Frame age grows by decode+encode at the relay, the
	// child's queue position, and one LAN hop.
	levelNodes := cfg.FanOut
	arrive := t1Age // per-node arrival age at the current level
	relayCost := cfg.DecodeTime.Seconds() + cfg.EncodeTime.Seconds()
	for level := 1; level < cfg.Tiers-1; level++ {
		next := make([]float64, levelNodes*cfg.FanOut)
		var egress int64
		for n := 0; n < levelNodes; n++ {
			for k := 0; k < cfg.FanOut; k++ {
				next[n*cfg.FanOut+k] = arrive[n] + relayCost +
					float64(k)*float64(lanBytes)*nicSec + lanHop
			}
			egress += int64(cfg.FanOut) * lanBytes
		}
		tiers = append(tiers, RelayTierStat{
			Tier: level, Nodes: levelNodes,
			EncodesPerFrame:     int64(levelNodes),
			EgressBytesPerFrame: egress,
		})
		levelNodes *= cfg.FanOut
		arrive = next
	}

	// Edge tier: viewers of region r round-robin across the edge nodes
	// descended from tier-1 relays of region r. Edge e sits under
	// tier-1 relay e/perT1, whose region is (e/perT1)%regions.
	perT1 := levelNodes / cfg.FanOut // edge nodes under one tier-1 relay
	regionEdges := make([][]int, regions)
	for e := 0; e < levelNodes; e++ {
		r := (e / perT1) % regions
		regionEdges[r] = append(regionEdges[r], e)
	}
	viewerEdge := make([]int, cfg.Viewers)
	rr := make([]int, regions) // per-region round-robin cursor
	for i := 0; i < cfg.Viewers; i++ {
		region := i % regions
		edges := regionEdges[region]
		viewerEdge[i] = edges[rr[region]%len(edges)]
		rr[region]++
	}
	ages := make([]float64, cfg.Viewers)
	pos := make([]int, levelNodes) // per-edge child position cursor
	var edgeEgress int64
	for i := 0; i < cfg.Viewers; i++ {
		e := viewerEdge[i]
		k := pos[e]
		pos[e]++
		ages[i] = arrive[e] + relayCost +
			float64(k)*float64(lanBytes)*nicSec + lanHop + cfg.DecodeTime.Seconds()
		edgeEgress += lanBytes
	}
	tiers = append(tiers, RelayTierStat{
		Tier: cfg.Tiers - 1, Nodes: levelNodes,
		EncodesPerFrame:     int64(levelNodes),
		EgressBytesPerFrame: edgeEgress,
	})

	var total int64
	for _, t := range tiers {
		total += t.EgressBytesPerFrame
	}
	res := RelayTreeResult{
		Viewers: cfg.Viewers, Tiers: cfg.Tiers, FanOut: cfg.FanOut, Frames: cfg.Frames,
		RootEgressBytes: rootEgress * int64(cfg.Frames),
		TotalBytes:      total * int64(cfg.Frames),
		TierStats:       tiers,
	}
	fillAges(&res, ages)
	return res
}

// fillAges computes the frame-age distribution fields from per-viewer
// ages in seconds.
func fillAges(res *RelayTreeResult, ages []float64) {
	sorted := append([]float64(nil), ages...)
	sort.Float64s(sorted)
	var sum float64
	for _, a := range sorted {
		sum += a
	}
	pick := func(q float64) time.Duration {
		idx := int(q*float64(len(sorted)-1) + 0.5)
		return secDur(sorted[idx])
	}
	res.P50FrameAge = pick(0.50)
	res.P99FrameAge = pick(0.99)
	res.MaxFrameAge = secDur(sorted[len(sorted)-1])
	res.MeanFrameAge = secDur(sum / float64(len(sorted)))
}
