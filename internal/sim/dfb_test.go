package sim

import (
	"testing"
	"time"
)

func rwcpDFB(g int) DFBConfig {
	return DFBConfig{
		G: g, ImageW: 512, ImageH: 512, TileRows: 8,
		T1Render:        8 * time.Second,
		LinkBW:          60e6,
		LinkLatency:     30 * time.Microsecond,
		BlendSecPerByte: 2e-9,
	}
}

func TestSimulateDFBValidation(t *testing.T) {
	bad := []DFBConfig{
		{},
		rwcpDFB(3),  // not a power of two
		rwcpDFB(-4), // negative
	}
	badRows := rwcpDFB(8)
	badRows.TileRows = -1
	badImb := rwcpDFB(8)
	badImb.Imbalance = 0.5
	bad = append(bad, badRows, badImb)
	for i, c := range bad {
		if _, err := SimulateDFB(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSimulateDFBDeterministic(t *testing.T) {
	a, err := SimulateDFB(rwcpDFB(128))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateDFB(rwcpDFB(128))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("model not deterministic:\n%+v\n%+v", a, b)
	}
}

// The refactor's scaling claim: at 64-512 modelled nodes the DFB's
// post-render compositing tail is shorter than the barrier's, it
// overlaps a real fraction of rendering, and footprint sparsity moves
// fewer bytes.
func TestSimulateDFBBeatsBarrierAtScale(t *testing.T) {
	for _, g := range []int{64, 128, 256, 512} {
		r, err := SimulateDFB(rwcpDFB(g))
		if err != nil {
			t.Fatal(err)
		}
		if r.DFBCritical >= r.BarrierCritical {
			t.Errorf("G=%d: DFB tail %v >= barrier %v", g, r.DFBCritical, r.BarrierCritical)
		}
		if r.Overlap <= 0 || r.Overlap > 1 {
			t.Errorf("G=%d: overlap %v out of (0,1]", g, r.Overlap)
		}
		if r.DFBBytes >= r.BarrierBytes {
			t.Errorf("G=%d: DFB bytes %d >= barrier bytes %d", g, r.DFBBytes, r.BarrierBytes)
		}
		if r.MaxRender <= 0 || r.NumTiles != 64 {
			t.Errorf("G=%d: result %+v", g, r)
		}
		t.Logf("G=%3d: barrier %8v  dfb %8v  overlap %.2f  bytes %.1fx",
			g, r.BarrierCritical, r.DFBCritical, r.Overlap,
			float64(r.BarrierBytes)/float64(r.DFBBytes))
	}
}

// The CI gate's threshold: at 256 modelled RWCP nodes at least a fifth
// of the tiles must composite in rendering's shadow.
func TestSimulateDFBOverlapAt256(t *testing.T) {
	r, err := SimulateDFB(rwcpDFB(256))
	if err != nil {
		t.Fatal(err)
	}
	if r.Overlap < 0.2 {
		t.Fatalf("overlap %v < 0.2 at G=256", r.Overlap)
	}
}
