package sim_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/wan"
)

// Evaluate the pipeline for a hand-specified workload — the paper's
// Figure 6 question: how does partitioning change the overall time?
func ExampleRun() {
	w := sim.Workload{
		Steps:                128,
		StepBytes:            129 * 129 * 104 * 4,
		VolumeMB:             6.9,
		ImageW:               256,
		ImageH:               256,
		T1Render:             15 * time.Second,
		CompressSecPerByte:   2e-9,
		CompressRatio:        0.015,
		DecompressSecPerByte: 4e-9,
		Link:                 wan.LAN(),
	}
	best, bestL := time.Duration(1<<62), 0
	for l := 1; l <= 32; l *= 2 {
		r, err := sim.Run(sim.Config{Machine: sim.RWCP(), Work: w, P: 32, L: l})
		if err != nil {
			fmt.Println(err)
			return
		}
		if r.Overall < best {
			best, bestL = r.Overall, l
		}
	}
	fmt.Println("optimal L:", bestL)
	// Output: optimal L: 4
}
