package sim

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
)

// StepTrace records the scheduled interval of every stage of one time
// step — the raw material of a pipeline Gantt chart, useful for
// understanding why a configuration is input-, render-, link- or
// viewer-bound.
type StepTrace struct {
	Step  int
	Group int
	// Stage intervals, in virtual time since run start.
	InputStart, InputEnd   time.Duration
	RenderStart, RenderEnd time.Duration
	SendStart, SendEnd     time.Duration
	Arrive                 time.Duration
	// Failed marks a step lost to a scheduled group failure; its
	// intervals are zero.
	Failed bool
}

// Gantt renders the trace as a fixed-width ASCII chart, one row per
// step: '.' input, '#' render (incl. composite+compress), '>' WAN
// send, '*' arrival.
func Gantt(w io.Writer, trace []StepTrace, width int) error {
	if len(trace) == 0 || width < 16 {
		return fmt.Errorf("sim: empty trace or width < 16")
	}
	var end time.Duration
	for _, s := range trace {
		if s.Arrive > end {
			end = s.Arrive
		}
	}
	if end <= 0 {
		return fmt.Errorf("sim: trace has no extent")
	}
	col := func(t time.Duration) int {
		c := int(float64(t) / float64(end) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	if _, err := fmt.Fprintf(w, "pipeline schedule (width = %v):\n", end); err != nil {
		return err
	}
	for _, s := range trace {
		if s.Failed {
			if _, err := fmt.Fprintf(w, "step %3d g%-2d |%-*s|\n", s.Step, s.Group, width, "x (group failed)"); err != nil {
				return err
			}
			continue
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		fill := func(a, b time.Duration, ch byte) {
			for i := col(a); i <= col(b); i++ {
				row[i] = ch
			}
		}
		fill(s.InputStart, s.InputEnd, '.')
		fill(s.RenderStart, s.RenderEnd, '#')
		fill(s.SendStart, s.SendEnd, '>')
		row[col(s.Arrive)] = '*'
		if _, err := fmt.Fprintf(w, "step %3d g%-2d |%s|\n", s.Step, s.Group, string(row)); err != nil {
			return err
		}
	}
	return nil
}

// GanttString renders the chart to a string.
func GanttString(trace []StepTrace, width int) string {
	var b strings.Builder
	if err := Gantt(&b, trace, width); err != nil {
		return err.Error()
	}
	return b.String()
}

// ExportSpans converts a simulated schedule into tracer spans on
// virtual time: each group gets a "sim group N" track carrying its
// input/render/send stages, plus a zero-width "arrive" marker — the
// same schedule Gantt draws, but loadable into a Chrome/Perfetto
// trace viewer alongside wall-clock pipeline spans.
func ExportSpans(t *obs.Tracer, trace []StepTrace) {
	for _, s := range trace {
		track := fmt.Sprintf("sim group %d", s.Group)
		if s.Failed {
			t.Add(obs.Span{Track: track, Cat: "sim", Name: "failed",
				Start: s.Arrive, End: s.Arrive,
				Args: map[string]any{"step": s.Step}})
			continue
		}
		t.Add(obs.Span{Track: track, Cat: "sim", Name: "input",
			Start: s.InputStart, End: s.InputEnd,
			Args: map[string]any{"step": s.Step}})
		t.Add(obs.Span{Track: track, Cat: "sim", Name: "render",
			Start: s.RenderStart, End: s.RenderEnd,
			Args: map[string]any{"step": s.Step}})
		t.Add(obs.Span{Track: track, Cat: "sim", Name: "send",
			Start: s.SendStart, End: s.SendEnd,
			Args: map[string]any{"step": s.Step}})
		t.Add(obs.Span{Track: track, Cat: "sim", Name: "arrive",
			Start: s.Arrive, End: s.Arrive,
			Args: map[string]any{"step": s.Step}})
	}
}
