// Barrier vs tile-ownership compositing at cluster scale: an
// event-driven model of the composite.DFB against the binary-swap
// barrier, for node counts far beyond what the in-process harness can
// run for real (64-512 modelled nodes). The model captures the two
// effects the refactor is about:
//
//   - overlap: a DFB fragment leaves the moment its scanline band is
//     rendered, so most tiles finish compositing in the shadow of the
//     stragglers' rendering; the barrier cannot start until the LAST
//     rank has rendered its whole partial image.
//
//   - footprint sparsity: a brick projects onto a small slice of the
//     screen, so most (tile, rank) fragments are 16-byte transparency
//     markers rather than pixel payloads; binary-swap always exchanges
//     dense half-regions.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DFBConfig parameterizes one barrier-vs-DFB comparison at a modelled
// group size G.
type DFBConfig struct {
	// G is the modelled group (node) size. Power of two, so the
	// binary-swap baseline is defined.
	G int
	// ImageW, ImageH set the framebuffer size; TileRows the DFB tile
	// height in scanlines (0 = 8, composite.DefaultTileRows).
	ImageW, ImageH, TileRows int
	// T1Render is the single-node whole-frame render time; each rank
	// renders 1/G of the work, spread by Imbalance.
	T1Render time.Duration
	// Imbalance is the max/mean per-rank render-work ratio (>= 1);
	// 0 uses the package's mild default model.
	Imbalance float64
	// LinkBW (bytes/s) and LinkLatency model the point-to-point
	// interconnect, exactly as Machine does for binary-swap.
	LinkBW      float64
	LinkLatency time.Duration
	// BlendSecPerByte is the over-operator cost per blended byte.
	BlendSecPerByte float64
	// DepthComplexity is the average number of bricks a view ray
	// pierces — the number of non-empty fragments a screen tile
	// collects. 0 derives cbrt(G), the kd-decomposition depth of a
	// cubical volume.
	DepthComplexity float64
	// Seed varies the deterministic placement hash.
	Seed uint64
}

func (c *DFBConfig) withDefaults() error {
	if c.G < 2 || c.G&(c.G-1) != 0 {
		return fmt.Errorf("sim: dfb G=%d must be a power of two >= 2", c.G)
	}
	if c.ImageW < 1 || c.ImageH < 1 {
		return fmt.Errorf("sim: dfb image %dx%d", c.ImageW, c.ImageH)
	}
	if c.TileRows == 0 {
		c.TileRows = 8
	}
	if c.TileRows < 0 {
		return fmt.Errorf("sim: dfb tile rows %d", c.TileRows)
	}
	if c.T1Render <= 0 {
		return fmt.Errorf("sim: dfb T1Render %v", c.T1Render)
	}
	if c.LinkBW <= 0 {
		return fmt.Errorf("sim: dfb link bandwidth %v", c.LinkBW)
	}
	if c.Imbalance == 0 {
		c.Imbalance = defaultImbalance(c.G)
	}
	if c.Imbalance < 1 {
		return fmt.Errorf("sim: dfb imbalance %v < 1", c.Imbalance)
	}
	if c.BlendSecPerByte < 0 {
		return fmt.Errorf("sim: dfb blend cost %v", c.BlendSecPerByte)
	}
	if c.DepthComplexity == 0 {
		c.DepthComplexity = math.Cbrt(float64(c.G))
	}
	return nil
}

// DFBResult reports one barrier-vs-DFB comparison.
type DFBResult struct {
	G        int
	NumTiles int
	// MaxRender is when the slowest rank finishes rendering — the
	// earliest instant the barrier compositor can begin, and the
	// reference point of both critical paths.
	MaxRender time.Duration
	// BarrierCritical is the binary-swap + final-gather time after
	// MaxRender.
	BarrierCritical time.Duration
	// DFBCritical is the time after MaxRender until the last DFB tile
	// is merged (the non-overlapped compositing tail).
	DFBCritical time.Duration
	// Overlap is the fraction of tiles fully merged before their
	// owner finished rendering — what composite.DFB.Overlap measures.
	Overlap float64
	// BarrierBytes and DFBBytes count compositing bytes on the wire.
	BarrierBytes int64
	DFBBytes     int64
}

// hash01 is a deterministic splitmix64-style hash onto [0,1) — the
// model's only source of placement variation (no global RNG state, so
// identical configs give identical results).
func hash01(seed, x uint64) float64 {
	z := seed + x*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// dfbFrag is one (contributor, tile) fragment departure.
type dfbFrag struct {
	rank, tile int
	depart     float64 // seconds: when the contributor posts it
	bytes      float64
	empty      bool
}

// SimulateDFB runs the comparison for one config.
//
// Barrier model: after the slowest rank renders, log2(G) binary-swap
// stages (latency + half-the-remaining-region transfer + blend) plus
// the final gather of G dense pieces into the root.
//
// DFB model: each rank renders its scanline bands top to bottom and
// posts every tile's fragment the moment its rows are done — a pixel
// payload if the rank's screen footprint covers the tile, a 16-byte
// marker otherwise. Fragments serialize through the sender's and the
// owner's NIC (one wire each way, latency in between); an owner
// merges a tile as soon as its last fragment arrives, one merge at a
// time. The critical path is the merge tail left after the slowest
// render; tiles merged before their owner finished rendering count
// toward overlap.
func SimulateDFB(cfg DFBConfig) (DFBResult, error) {
	if err := cfg.withDefaults(); err != nil {
		return DFBResult{}, err
	}
	g := cfg.G
	numTiles := (cfg.ImageH + cfg.TileRows - 1) / cfg.TileRows
	imageBytes := float64(cfg.ImageW * cfg.ImageH * 16) // 4 float32s per pixel
	tileBytes := imageBytes / float64(numTiles)
	lat := cfg.LinkLatency.Seconds()

	// Per-rank render completion: mean T1/G, spread so the slowest
	// rank carries Imbalance times the mean.
	renderEnd := make([]float64, g)
	maxRender := 0.0
	mean := cfg.T1Render.Seconds() / float64(g)
	for r := 0; r < g; r++ {
		f := 1 + (cfg.Imbalance-1)*hash01(cfg.Seed, uint64(r)+1)
		if r == g-1 {
			f = cfg.Imbalance // pin one true straggler
		}
		renderEnd[r] = mean * f
		maxRender = math.Max(maxRender, renderEnd[r])
	}

	// Barrier critical path: binary-swap stages + dense final gather,
	// all strictly after maxRender.
	barrier := 0.0
	remaining := imageBytes
	stages := int(math.Log2(float64(g)))
	for s := 0; s < stages; s++ {
		remaining /= 2
		barrier += lat + remaining/cfg.LinkBW + cfg.BlendSecPerByte*remaining
	}
	pieceBytes := imageBytes / float64(g)
	barrier += lat + float64(g-1)*pieceBytes/cfg.LinkBW
	var barrierBytes int64
	rem := imageBytes
	for s := 0; s < stages; s++ {
		rem /= 2
		barrierBytes += int64(float64(g) * rem)
	}
	barrierBytes += int64(float64(g-1) * pieceBytes)

	// DFB fragments: rank r's screen footprint is a contiguous band of
	// tiles (a brick projects onto a slice of the screen) of height
	// DepthComplexity/G of the image — so a tile collects on average
	// DepthComplexity pixel fragments and G minus that many markers.
	span := int(math.Round(float64(numTiles) * cfg.DepthComplexity / float64(g)))
	span = max(1, min(span, numTiles))
	frags := make([]dfbFrag, 0, g*numTiles)
	var dfbBytes int64
	for r := 0; r < g; r++ {
		start := int(hash01(cfg.Seed^0xabcd, uint64(r)+1) * float64(numTiles-span+1))
		for ti := 0; ti < numTiles; ti++ {
			empty := ti < start || ti >= start+span
			b := tileBytes
			if empty {
				b = 16
			}
			// Bands render top to bottom: tile ti's rows are final at
			// the (ti+1)/numTiles point of this rank's render.
			frags = append(frags, dfbFrag{
				rank: r, tile: ti,
				depart: renderEnd[r] * float64(ti+1) / float64(numTiles),
				bytes:  b, empty: empty,
			})
			if owner := ti % g; owner != r {
				dfbBytes += int64(b)
			}
		}
	}
	sort.Slice(frags, func(i, j int) bool {
		a, b := frags[i], frags[j]
		if a.depart != b.depart {
			return a.depart < b.depart
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.tile < b.tile
	})

	// Route every fragment through the sender's and owner's NIC.
	outFree := make([]float64, g)
	inFree := make([]float64, g)
	lastArrive := make([]float64, numTiles)
	pixFrags := make([]int, numTiles)
	for _, f := range frags {
		owner := f.tile % g
		var arrive float64
		if owner == f.rank {
			arrive = f.depart // own fragment: no wire
		} else {
			sendEnd := math.Max(f.depart, outFree[f.rank]) + f.bytes/cfg.LinkBW
			outFree[f.rank] = sendEnd
			recvEnd := math.Max(sendEnd+lat, inFree[owner]) + f.bytes/cfg.LinkBW
			inFree[owner] = recvEnd
			arrive = recvEnd
		}
		lastArrive[f.tile] = math.Max(lastArrive[f.tile], arrive)
		if !f.empty {
			pixFrags[f.tile]++
		}
	}

	// Owners merge tiles one at a time, in arrival order, as soon as
	// the last fragment lands.
	type readyTile struct {
		tile  int
		ready float64
	}
	byOwner := make([][]readyTile, g)
	for ti := 0; ti < numTiles; ti++ {
		o := ti % g
		byOwner[o] = append(byOwner[o], readyTile{ti, lastArrive[ti]})
	}
	dfbEnd, earlyTiles := 0.0, 0
	for o, owned := range byOwner {
		sort.Slice(owned, func(i, j int) bool { return owned[i].ready < owned[j].ready })
		free := 0.0
		for _, rt := range owned {
			mergeEnd := math.Max(rt.ready, free) + cfg.BlendSecPerByte*tileBytes*float64(pixFrags[rt.tile])
			free = mergeEnd
			if mergeEnd <= renderEnd[o] {
				earlyTiles++
			}
			dfbEnd = math.Max(dfbEnd, mergeEnd)
		}
	}

	return DFBResult{
		G:               g,
		NumTiles:        numTiles,
		MaxRender:       secDur(maxRender),
		BarrierCritical: secDur(barrier),
		DFBCritical:     secDur(math.Max(0, dfbEnd-maxRender)),
		Overlap:         float64(earlyTiles) / float64(numTiles),
		BarrierBytes:    barrierBytes,
		DFBBytes:        dfbBytes,
	}, nil
}
