package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/compress"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/vol"
)

// Calibration holds per-unit costs measured from this repository's
// real renderer and codecs, so simulated stage durations inherit their
// shape from real code rather than hand-picked constants.
type Calibration struct {
	// SecPerSample is the measured ray-casting cost per volume sample
	// on the calibration host.
	SecPerSample float64
	// SecPerRay is the per-ray setup cost.
	SecPerRay float64
	// EncodeSecPerByte / DecodeSecPerByte / Ratio are measured for
	// the compression pipeline (raw-byte denominated).
	EncodeSecPerByte float64
	DecodeSecPerByte float64
	Ratio            float64
	// Frame is the rendered reference frame used for codec
	// measurements.
	Frame *img.Frame
}

// CalibrationOptions selects what to measure.
type CalibrationOptions struct {
	// Dataset names the generator ("jet", "vortex", "mixing").
	Dataset string
	// Scale reduces the measurement volume (calibration only needs a
	// representative sample); 0 means 0.4.
	Scale float64
	// ImageSize is the measurement image size; 0 means 128.
	ImageSize int
	// Codec is the measured compression chain; empty means
	// "jpeg+lzo".
	Codec string
}

// Calibrate measures renderer and codec costs on the host.
func Calibrate(opt CalibrationOptions) (*Calibration, error) {
	if opt.Dataset == "" {
		opt.Dataset = "jet"
	}
	if opt.Scale == 0 {
		opt.Scale = 0.4
	}
	if opt.ImageSize == 0 {
		opt.ImageSize = 128
	}
	if opt.Codec == "" {
		opt.Codec = "jpeg+lzo"
	}
	gen, err := datagen.ByName(opt.Dataset, opt.Scale, 3)
	if err != nil {
		return nil, err
	}
	v, err := gen.Step(1)
	if err != nil {
		return nil, err
	}
	tfn, err := tf.Preset(opt.Dataset)
	if err != nil {
		return nil, err
	}
	cam, err := render.NewOrbitCamera(v.Dims, 0.6, 0.35, 1.8)
	if err != nil {
		return nil, err
	}
	ropt := render.DefaultOptions()
	// The calibration models one 1999-era processor: per-sample cost
	// must come from a single-threaded render, not the multicore tile
	// engine, or the simulated per-node render times shrink by the
	// host's core count.
	ropt.Workers = 1

	// Min-of-3 timing: calibration may run alongside other work (e.g.
	// parallel test packages), and the minimum is the least
	// contended estimate of the true cost.
	var im *img.RGBA
	var st render.Stats
	renderTime := math.Inf(1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		var err error
		im, st, err = render.Render(v, cam, tfn, ropt, opt.ImageSize, opt.ImageSize)
		if err != nil {
			return nil, err
		}
		if el := time.Since(start).Seconds(); el < renderTime {
			renderTime = el
		}
	}
	if st.Samples == 0 || st.Rays == 0 {
		return nil, fmt.Errorf("sim: calibration render did no work")
	}
	c := &Calibration{}
	// Attribute 85% of the time to sampling and the rest to per-ray
	// setup — a crude split that keeps both terms positive and lets
	// sample-dominated projections extrapolate across image sizes.
	c.SecPerSample = renderTime * 0.85 / float64(st.Samples)
	c.SecPerRay = renderTime * 0.15 / float64(st.Rays)

	frame := im.ToFrame(0)
	c.Frame = frame
	codec, err := compress.ByName(opt.Codec)
	if err != nil {
		return nil, err
	}
	const reps = 3
	encT, decT := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	var encoded []byte
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		encoded, err = codec.EncodeFrame(frame)
		if err != nil {
			return nil, err
		}
		if el := time.Since(t0); el < encT {
			encT = el
		}
		t0 = time.Now()
		if _, err := codec.DecodeFrame(encoded); err != nil {
			return nil, err
		}
		if el := time.Since(t0); el < decT {
			decT = el
		}
	}
	raw := float64(len(frame.Pix))
	c.EncodeSecPerByte = encT.Seconds() / raw
	c.DecodeSecPerByte = decT.Seconds() / raw
	c.Ratio = float64(len(encoded)) / raw
	return c, nil
}

// EstimateT1 projects the single-node render time of one full-size
// time step at the given image size by probing sample counts with a
// cheap low-resolution ray pass over the full-size volume bounds.
func (c *Calibration) EstimateT1(dims vol.Dims, imageW, imageH int, step float64) time.Duration {
	const probe = 48
	samples := probeSamples(dims, probe, probe, step)
	// Scale sample count from the probe resolution to the target.
	scale := float64(imageW*imageH) / float64(probe*probe)
	total := samples * scale
	rays := float64(imageW * imageH)
	return time.Duration((total*c.SecPerSample + rays*c.SecPerRay) * float64(time.Second))
}

// probeSamples counts ray-marching samples geometrically (no volume
// data needed): rays against the volume bounding box.
func probeSamples(dims vol.Dims, w, h int, step float64) float64 {
	cam, err := render.NewOrbitCamera(dims, 0.6, 0.35, 1.8)
	if err != nil {
		return 0
	}
	box := vol.Box{X1: dims.NX, Y1: dims.NY, Z1: dims.NZ}
	var total float64
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			orig, dir := cam.Ray(px, py, w, h)
			tn, tf2, ok := render.IntersectBox(orig, dir, box)
			if !ok {
				continue
			}
			total += (tf2 - tn) / step
		}
	}
	return total
}

// MeasuredImbalance returns an imbalance function backed by the
// geometric per-brick sample shares of a kd decomposition of dims:
// imbalance(G) = max brick share / mean share.
func (c *Calibration) MeasuredImbalance(dims vol.Dims) func(int) float64 {
	cache := map[int]float64{}
	return func(g int) float64 {
		if g <= 1 {
			return 1
		}
		if v, ok := cache[g]; ok {
			return v
		}
		v := measureImbalance(dims, g)
		cache[g] = v
		return v
	}
}

// measureImbalance probes per-brick ray-segment work geometrically and
// averages the max/mean ratio over several viewpoints, matching the
// batch setting where the imbalance of any single view is amortized
// across an animation.
func measureImbalance(dims vol.Dims, g int) float64 {
	boxes, err := vol.SplitKD(dims, g)
	if err != nil {
		return 1
	}
	views := [][2]float64{{0.6, 0.35}, {1.8, -0.2}, {3.1, 0.7}, {4.4, 0.1}}
	const probe = 40
	var acc float64
	for _, view := range views {
		cam, err := render.NewOrbitCamera(dims, view[0], view[1], 1.8)
		if err != nil {
			return 1
		}
		work := make([]float64, len(boxes))
		for py := 0; py < probe; py++ {
			for px := 0; px < probe; px++ {
				orig, dir := cam.Ray(px, py, probe, probe)
				for i, b := range boxes {
					tn, tf2, ok := render.IntersectBox(orig, dir, b)
					if ok && tf2 > tn {
						work[i] += tf2 - tn
					}
				}
			}
		}
		var max, sum float64
		for _, w := range work {
			if w > max {
				max = w
			}
			sum += w
		}
		if sum == 0 || max == 0 {
			acc += 1
			continue
		}
		mean := sum / float64(len(work))
		acc += max / mean
	}
	return acc / float64(len(views))
}

// PaperT1 is the paper's stated single-processor render time for a
// 256x256 frame of the turbulent-jet data ("about 10 to 20 seconds");
// machine profiles scale calibrated CPU costs to hit it.
const PaperT1 = 15 * time.Second

// PaperDecodeSecPerByte is the display host's decompression cost per
// raw image byte implied by the paper's stated numbers ("the
// decompression cost is between 12 milliseconds [128²] and 600
// milliseconds [1024²]", on a single SGI O2): roughly 2e-7 s per raw
// byte at both ends of that range.
const PaperDecodeSecPerByte = 2e-7

// ScaleToPaper sets m.CPUScale so the calibrated T1 for dims at
// 256x256 matches PaperT1, returning the scaled machine and the
// scaled T1 the workload should carry.
func (c *Calibration) ScaleToPaper(m Machine, dims vol.Dims) (Machine, time.Duration) {
	t1 := c.EstimateT1(dims, 256, 256, render.DefaultOptions().Step)
	if t1 <= 0 {
		m.CPUScale = 1
		m.ViewerScale = 1
		return m, PaperT1
	}
	m.CPUScale = float64(PaperT1) / float64(t1)
	// The display host (an SGI O2) is calibrated separately: the
	// paper states its decompression costs directly, and the O2 was
	// much closer to a modern CPU at byte-pushing than the render
	// nodes were at ray casting.
	if c.DecodeSecPerByte > 0 {
		m.ViewerScale = PaperDecodeSecPerByte / c.DecodeSecPerByte
	} else {
		m.ViewerScale = 1
	}
	return m, PaperT1
}

// WorkloadFor builds a calibrated workload for a dataset at a given
// image size on machine m (already scaled). The returned workload's
// T1Render reflects the target image size (scaled from the paper's
// 256x256 anchor by geometric sample counts).
func (c *Calibration) WorkloadFor(m Machine, dims vol.Dims, steps, imgW, imgH int) Workload {
	step := render.DefaultOptions().Step
	t1At := func(w, h int) float64 {
		return float64(c.EstimateT1(dims, w, h, step))
	}
	anchor := t1At(256, 256)
	ratio := 1.0
	if anchor > 0 {
		ratio = t1At(imgW, imgH) / anchor
	}
	return Workload{
		Steps:     steps,
		StepBytes: dims.Bytes(),
		VolumeMB:  float64(dims.Bytes()) / (1 << 20),
		ImageW:    imgW,
		ImageH:    imgH,
		T1Render:  time.Duration(float64(PaperT1) * ratio),
		Imbalance: c.MeasuredImbalance(dims),
		// Run scales these by the machine's CPUScale / ViewerScale.
		CompressSecPerByte:   c.EncodeSecPerByte,
		CompressRatio:        c.Ratio,
		DecompressSecPerByte: c.DecodeSecPerByte,
	}
}
