package sim

import (
	"math"
)

// Analytic evaluates the closed-form performance model of Ma, Chiueh
// and Camp ("Processors Management for Rendering Time-varying Volume
// Data Sets", the paper's reference [15]) for a configuration: the
// pipeline's steady-state rate is set by its slowest stage, so
//
//	overall ≈ startup + (steps-1) * max(stage times)
//
// with the stage times computed exactly as in Run. The discrete-event
// schedule in Run captures transients (pipeline fill, buffer limits,
// stragglers) that the closed form ignores; TestAnalyticMatchesRun
// bounds the disagreement.
func Analytic(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	m, w := c.Machine, c.Work
	G := c.P / c.L
	imb := w.Imbalance
	if imb == nil {
		imb = defaultImbalance
	}
	inputT := float64(w.StepBytes) / m.InputBW
	renderT := w.T1Render.Seconds() / float64(G) * imb(G) * cachePenalty(m, w.VolumeMB/float64(G))
	compositeT := binarySwapTime(G, w.ImageW*w.ImageH*16, m)
	syncT := 0.0
	if G > 1 {
		syncT = m.DistOverhead.Seconds() * float64(G)
	}
	rawImage := float64(w.ImageW * w.ImageH * 3)
	compressT := w.CompressSecPerByte * rawImage / float64(G) * m.CPUScale
	groupT := renderT + compositeT + syncT + compressT
	sendT := 0.0
	if w.Link.Bandwidth > 0 {
		sendT = rawImage * w.CompressRatio / w.Link.Bandwidth
	}
	lat := w.Link.Latency.Seconds()
	decodeT := w.DecompressSecPerByte * rawImage * m.ViewerScale

	startup := inputT + groupT + sendT + lat + decodeT

	var bottleneck float64
	if c.NoPipeline || c.L == 1 {
		// Sequential input+render per step; output still overlaps the
		// next step's work.
		bottleneck = math.Max(inputT+groupT, math.Max(sendT, decodeT))
	} else {
		perGroupRate := groupT / float64(c.L)
		if !c.ParallelInput {
			bottleneck = math.Max(inputT, perGroupRate)
		} else {
			bottleneck = math.Max(inputT/float64(c.L), perGroupRate)
		}
		bottleneck = math.Max(bottleneck, math.Max(sendT, decodeT))
	}
	overall := startup + float64(w.Steps-1)*bottleneck

	res := Result{
		StartupLatency:    secDur(startup),
		Overall:           secDur(overall),
		RenderPerFrame:    secDur(groupT),
		TransportPerFrame: secDur(sendT + lat),
		DecodePerFrame:    secDur(decodeT),
		InputPerFrame:     secDur(inputT),
	}
	if w.Steps > 1 {
		res.InterFrameDelay = secDur(bottleneck)
	}
	return res, nil
}
