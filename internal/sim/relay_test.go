package sim

import (
	"testing"
	"time"

	"repro/internal/wan"
)

func relayBase() RelayTreeConfig {
	return RelayTreeConfig{
		Viewers:    1200,
		Mix:        []wan.Profile{wan.LAN(), wan.NASAUCD(), wan.JapanUCD()},
		FrameBytes: 60 << 10,
		Frames:     50,
		Target:     100 * time.Millisecond,
	}
}

// TestRelayTreeCutsRootEgress: the acceptance shape — a 3-tier tree's
// root egress is at least FanOut times below the flat topology's at
// equal viewer count, and the reduction roughly tracks viewers/FanOut.
func TestRelayTreeCutsRootEgress(t *testing.T) {
	cfg := relayBase()
	cfg.Tiers = 1
	flat, err := SimulateRelayTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tiers, cfg.FanOut = 3, 8
	tree, err := SimulateRelayTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.RootEgressBytes <= 0 || flat.RootEgressBytes <= 0 {
		t.Fatalf("zero egress: flat %d tree %d", flat.RootEgressBytes, tree.RootEgressBytes)
	}
	red := float64(flat.RootEgressBytes) / float64(tree.RootEgressBytes)
	if red < float64(cfg.FanOut) {
		t.Errorf("root-egress reduction %.1fx < fan-out %d", red, cfg.FanOut)
	}
	// The root only talks to FanOut relays, so the reduction should be
	// near viewers/fanOut (rung mixes match because tier-1 relays are
	// spread over the same regions as the viewers).
	ideal := float64(cfg.Viewers) / float64(cfg.FanOut)
	if red < ideal*0.5 || red > ideal*2 {
		t.Errorf("reduction %.1fx implausibly far from viewers/fanout %.1fx", red, ideal)
	}
	// Frame age also improves: the flat root serializes 1200 copies
	// onto one NIC, the tree at most FanOut per node.
	if tree.P99FrameAge >= flat.P99FrameAge {
		t.Errorf("tree p99 age %v not below flat %v", tree.P99FrameAge, flat.P99FrameAge)
	}
}

// TestRelayTreeTierShape checks tier bookkeeping: node counts follow
// FanOut^level, encode counts follow the encode-once rule (root: one
// per distinct region rung; relays: one per node), and total bytes
// exceed root egress (the tree moves bytes near viewers, not fewer
// bytes overall).
func TestRelayTreeTierShape(t *testing.T) {
	cfg := relayBase()
	cfg.Tiers, cfg.FanOut = 3, 6
	res, err := SimulateRelayTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TierStats) != 3 {
		t.Fatalf("tier stats = %d rows, want 3", len(res.TierStats))
	}
	wantNodes := []int{1, 6, 36}
	for i, ts := range res.TierStats {
		if ts.Nodes != wantNodes[i] {
			t.Errorf("tier %d nodes = %d, want %d", i, ts.Nodes, wantNodes[i])
		}
	}
	if root := res.TierStats[0].EncodesPerFrame; root < 1 || root > int64(len(cfg.Mix)) {
		t.Errorf("root encodes/frame = %d, want 1..%d distinct region rungs", root, len(cfg.Mix))
	}
	for _, ts := range res.TierStats[1:] {
		if ts.EncodesPerFrame != int64(ts.Nodes) {
			t.Errorf("tier %d encodes/frame = %d, want one per node (%d)", ts.Tier, ts.EncodesPerFrame, ts.Nodes)
		}
	}
	if res.TotalBytes <= res.RootEgressBytes {
		t.Errorf("total bytes %d not above root egress %d", res.TotalBytes, res.RootEgressBytes)
	}
}

// TestRelayTreeDeterministic: same config, same result — the model is
// closed-form.
func TestRelayTreeDeterministic(t *testing.T) {
	cfg := relayBase()
	cfg.Tiers, cfg.FanOut = 3, 4
	a, err := SimulateRelayTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRelayTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RootEgressBytes != b.RootEgressBytes || a.P99FrameAge != b.P99FrameAge || a.TotalBytes != b.TotalBytes {
		t.Fatalf("model not deterministic: %+v vs %+v", a, b)
	}
}

// TestRelayTreeValidation rejects impossible shapes.
func TestRelayTreeValidation(t *testing.T) {
	bad := []RelayTreeConfig{
		{},
		{Viewers: 10},
		{Viewers: 10, Mix: []wan.Profile{wan.LAN()}, Tiers: 0},
		{Viewers: 10, Mix: []wan.Profile{wan.LAN(), wan.NASAUCD()}, Tiers: 2, FanOut: 1, FrameBytes: 100},
		{Viewers: 10, Mix: []wan.Profile{wan.LAN()}, Tiers: 1},
	}
	for i, cfg := range bad {
		if _, err := SimulateRelayTree(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
