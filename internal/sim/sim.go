// Package sim is a deterministic virtual-time simulator of the
// paper's parallel rendering pipeline. The host machine has one CPU,
// so wall-clock speedup curves for 16–64 node machines cannot be
// measured directly; instead the pipeline's task graph — data input on
// a shared sequential path, group rendering, binary-swap compositing,
// parallel compression, wide-area image output, and viewer-side
// decompression — is scheduled greedily in dependency order against
// per-resource availability times. Stage costs come from a Calibration
// built by measuring this repository's real renderer and codecs, then
// scaled by a machine profile to the paper's hardware (a single
// processor rendering one 256x256 frame in 10–20 s).
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/wan"
)

// Machine describes the parallel computer the pipeline runs on.
type Machine struct {
	Name string
	// CPUScale multiplies calibrated CPU costs (render, compress): a
	// value above 1 models a slower processor than the calibration
	// host.
	CPUScale float64
	// InputBW is the sequential data-input bandwidth (disk + LAN
	// distribution) in bytes/s — the paper's "no parallel I/O" path.
	InputBW float64
	// LinkBW and LinkLatency model the interconnect used by
	// binary-swap compositing (per-node point-to-point).
	LinkBW      float64
	LinkLatency time.Duration
	// CacheMB is the per-node working-set size above which rendering
	// slows down; CachePenalty is the per-doubling slowdown. Models
	// the paper's observation that exploiting only inter-volume
	// parallelism (whole volume per node) is limited by per-node
	// memory behaviour.
	CacheMB      float64
	CachePenalty float64
	// DistOverhead is the per-member 3D-data-distribution cost a group
	// pays each frame: the group master extracts and hands one brick
	// to each of its G members sequentially, so the charge is G *
	// DistOverhead — the paper's "when the degree of parallelism is
	// high ... 3D data distribution becomes a significant performance
	// factor".
	DistOverhead time.Duration
	// ViewerScale multiplies viewer-side decompression cost (the
	// paper's display host, an SGI O2, is "a less powerful machine").
	ViewerScale float64
}

// RWCP models the 128-node Pentium Pro / Myrinet cluster.
func RWCP() Machine {
	return Machine{
		Name:     "rwcp",
		CPUScale: 1, // set by Calibrate to match the paper's T1
		InputBW:  10e6,
		LinkBW:   60e6, LinkLatency: 30 * time.Microsecond,
		CacheMB: 1.6, CachePenalty: 0.25,
		DistOverhead: 35 * time.Millisecond,
		ViewerScale:  1,
	}
}

// O2K models the NASA Ames SGI Origin 2000.
func O2K() Machine {
	return Machine{
		Name:     "o2k",
		CPUScale: 1,
		InputBW:  12e6,
		LinkBW:   150e6, LinkLatency: 10 * time.Microsecond,
		CacheMB: 3.2, CachePenalty: 0.2,
		DistOverhead: 20 * time.Millisecond,
		ViewerScale:  1,
	}
}

// Workload describes the rendering job.
type Workload struct {
	// Steps is the number of time steps rendered.
	Steps int
	// StepBytes is the raw size of one time step.
	StepBytes int64
	// VolumeMB is the in-memory size of one volume (for the cache
	// model).
	VolumeMB float64
	// ImageW, ImageH set the output image size.
	ImageW, ImageH int
	// T1Render is the single-node time to render one step at
	// ImageW x ImageH on the TARGET machine (after CPU scaling).
	T1Render time.Duration
	// Imbalance maps group size G to the max/mean per-brick work
	// ratio (>= 1); nil means a mild default model.
	Imbalance func(g int) float64
	// CompressSecPerByte is the per-raw-byte parallel compression
	// cost on the target machine; CompressRatio is
	// compressed/raw. A ratio of 1 with zero cost models the X
	// baseline.
	CompressSecPerByte float64
	CompressRatio      float64
	// DecompressSecPerByte is the viewer-side cost per raw byte.
	DecompressSecPerByte float64
	// Link is the wide-area path from the machine to the display.
	Link wan.Profile
}

// defaultImbalance is a mild sublinear imbalance model measured from
// kd decompositions of the jet dataset (see calibrate.go for the
// measured variant).
func defaultImbalance(g int) float64 {
	if g <= 1 {
		return 1
	}
	return 1 + 0.08*math.Log2(float64(g))
}

// Config couples a machine, a workload, and the processor management
// choice.
type Config struct {
	Machine Machine
	Work    Workload
	// P is the total processor count; L the number of groups.
	P, L int
	// NoPipeline disables input/render overlap, modelling the paper's
	// first approach (L=1, "the pipeline effect is ignored"). It is
	// implied when L == 1.
	NoPipeline bool
	// ParallelInput models the paper's §7.1 extension: with parallel
	// I/O support each group reads its own time step concurrently
	// instead of sharing one sequential input path ("Parallel I/O, if
	// available, can be incorporated into the pipeline rendering
	// process quite straightforwardly, and would improve the overall
	// system performance").
	ParallelInput bool
	// Failures schedules group deaths — the virtual-time mirror of the
	// real pipeline's skip-and-continue degradation: from AtStep on, a
	// failed group's steps are marked failed and consume no resources
	// while the surviving groups keep the schedule.
	Failures []GroupFailure
}

// GroupFailure kills one processor group at the step it would start.
type GroupFailure struct {
	// Group is the group index (0..L-1); AtStep the first step it
	// fails on (the group's later steps fail too).
	Group, AtStep int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.P < 1 {
		return fmt.Errorf("sim: P = %d", c.P)
	}
	if c.L < 1 || c.L > c.P {
		return fmt.Errorf("sim: L = %d out of [1,%d]", c.L, c.P)
	}
	if c.P%c.L != 0 {
		return fmt.Errorf("sim: P=%d not divisible by L=%d", c.P, c.L)
	}
	if c.Work.Steps < 1 {
		return fmt.Errorf("sim: steps = %d", c.Work.Steps)
	}
	if c.Work.T1Render <= 0 {
		return fmt.Errorf("sim: T1Render = %v", c.Work.T1Render)
	}
	if c.Work.ImageW < 1 || c.Work.ImageH < 1 {
		return fmt.Errorf("sim: image %dx%d", c.Work.ImageW, c.Work.ImageH)
	}
	if c.Work.CompressRatio <= 0 || c.Work.CompressRatio > 1 {
		return fmt.Errorf("sim: compress ratio %v", c.Work.CompressRatio)
	}
	for _, f := range c.Failures {
		if f.Group < 0 || f.Group >= c.L {
			return fmt.Errorf("sim: failure group %d out of [0,%d)", f.Group, c.L)
		}
		if f.AtStep < 0 {
			return fmt.Errorf("sim: failure step %d", f.AtStep)
		}
	}
	return nil
}

// Result reports the three performance metrics of §3 plus per-frame
// breakdowns.
type Result struct {
	// StartupLatency is the time until the first frame appears.
	StartupLatency time.Duration
	// Overall is the time until the last frame appears.
	Overall time.Duration
	// InterFrameDelay is the mean time between consecutive frame
	// appearances (in display order).
	InterFrameDelay time.Duration
	// Arrivals are the raw frame arrival times at the viewer.
	Arrivals []time.Duration
	// Per-frame mean stage costs.
	RenderPerFrame    time.Duration // render+composite+compress on the machine
	TransportPerFrame time.Duration // WAN serialization + latency
	DecodePerFrame    time.Duration // viewer decompression
	InputPerFrame     time.Duration
	// Frames is the number of steps that completed; FailedSteps the
	// number lost to scheduled group failures.
	Frames      int
	FailedSteps int
	// Trace records every step's scheduled stage intervals (see
	// Gantt).
	Trace []StepTrace
}

// Run schedules the pipeline and returns its metrics.
func Run(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	m, w := c.Machine, c.Work
	G := c.P / c.L
	imb := w.Imbalance
	if imb == nil {
		imb = defaultImbalance
	}

	// Stage durations (seconds).
	inputT := float64(w.StepBytes) / m.InputBW
	renderT := w.T1Render.Seconds() / float64(G) * imb(G) * cachePenalty(m, w.VolumeMB/float64(G))
	compositeT := binarySwapTime(G, w.ImageW*w.ImageH*16, m)
	syncT := 0.0
	if G > 1 {
		syncT = m.DistOverhead.Seconds() * float64(G)
	}
	rawImage := float64(w.ImageW * w.ImageH * 3)
	compressT := w.CompressSecPerByte * rawImage / float64(G) * m.CPUScale
	groupT := renderT + compositeT + syncT + compressT
	compressedBytes := rawImage * w.CompressRatio
	sendT := 0.0
	if w.Link.Bandwidth > 0 {
		sendT = compressedBytes / w.Link.Bandwidth
	}
	lat := w.Link.Latency.Seconds()
	decodeT := w.DecompressSecPerByte * rawImage * m.ViewerScale

	noPipe := c.NoPipeline || c.L == 1

	// Resource availability (seconds of virtual time). With parallel
	// I/O every group gets its own input path; otherwise one shared
	// sequential path serializes all reads.
	diskFree := make([]float64, 1)
	if c.ParallelInput {
		diskFree = make([]float64, c.L)
	}
	groupFree := make([]float64, c.L)
	wanFree := 0.0
	viewerFree := 0.0
	renderDone := make([]float64, w.Steps)
	arrive := make([]time.Duration, w.Steps)
	failed := make([]bool, w.Steps)
	trace := make([]StepTrace, w.Steps)

	// failFrom[g] is the first step group g fails on (earliest wins).
	failFrom := map[int]int{}
	for _, f := range c.Failures {
		if cur, ok := failFrom[f.Group]; !ok || f.AtStep < cur {
			failFrom[f.Group] = f.AtStep
		}
	}

	for s := 0; s < w.Steps; s++ {
		g := s % c.L
		if at, dead := failFrom[g]; dead && s >= at {
			// Skip-and-continue: a dead group's steps are lost and
			// consume no input, render, WAN, or viewer time.
			failed[s] = true
			trace[s] = StepTrace{Step: s, Group: g, Failed: true}
			continue
		}
		// Input: shared sequential path; a group's input buffer frees
		// when its previous volume has been rendered (double
		// buffering); without pipelining, input waits for the whole
		// previous frame of the group to complete.
		bufReady := 0.0
		if noPipe {
			if s >= c.L {
				bufReady = groupFree[g]
			}
		} else if s >= 2*c.L {
			bufReady = renderDone[s-2*c.L]
		}
		disk := 0
		if c.ParallelInput {
			disk = g
		}
		inputStart := math.Max(diskFree[disk], bufReady)
		inputDone := inputStart + inputT
		diskFree[disk] = inputDone

		renderStart := math.Max(inputDone, groupFree[g])
		groupDone := renderStart + groupT
		groupFree[g] = groupDone
		renderDone[s] = groupDone

		// WAN is a shared serialized link.
		sendStart := math.Max(groupDone, wanFree)
		wanFree = sendStart + sendT

		dispStart := math.Max(wanFree+lat, viewerFree)
		arrival := dispStart + decodeT
		viewerFree = arrival
		arrive[s] = secDur(arrival)
		trace[s] = StepTrace{
			Step: s, Group: g,
			InputStart: secDur(inputStart), InputEnd: secDur(inputDone),
			RenderStart: secDur(renderStart), RenderEnd: secDur(groupDone),
			SendStart: secDur(sendStart), SendEnd: secDur(wanFree),
			Arrive: arrive[s],
		}
	}

	res := Result{
		Trace:             trace,
		Arrivals:          arrive,
		RenderPerFrame:    secDur(groupT),
		TransportPerFrame: secDur(sendT + lat),
		DecodePerFrame:    secDur(decodeT),
		InputPerFrame:     secDur(inputT),
	}
	// Frames display in step order; a frame can only appear after all
	// earlier completed ones. Failed steps never arrive and are
	// excluded from the latency series.
	display := make([]time.Duration, 0, len(arrive))
	run := time.Duration(0)
	for i, a := range arrive {
		if failed[i] {
			continue
		}
		if a > run {
			run = a
		}
		display = append(display, run)
	}
	res.Frames = len(display)
	res.FailedSteps = w.Steps - len(display)
	if len(display) > 0 {
		res.StartupLatency = display[0]
		res.Overall = display[len(display)-1]
	}
	if len(display) > 1 {
		res.InterFrameDelay = (res.Overall - res.StartupLatency) / time.Duration(len(display)-1)
	}
	return res, nil
}

func secDur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// cachePenalty slows rendering when the per-node working set exceeds
// the machine's cache-friendly size, by CachePenalty per doubling.
func cachePenalty(m Machine, perNodeMB float64) float64 {
	if m.CacheMB <= 0 || perNodeMB <= m.CacheMB {
		return 1
	}
	return 1 + m.CachePenalty*math.Log2(perNodeMB/m.CacheMB)
}

// binarySwapTime models log2(G) exchange stages, each sending half the
// remaining image region and blending it.
func binarySwapTime(g int, imageBytes int, m Machine) float64 {
	if g <= 1 {
		return 0
	}
	stages := int(math.Log2(float64(g)))
	t := 0.0
	remaining := float64(imageBytes)
	for s := 0; s < stages; s++ {
		remaining /= 2
		t += remaining/m.LinkBW + m.LinkLatency.Seconds()
	}
	return t
}
