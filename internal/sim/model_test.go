package sim

import (
	"math"
	"testing"
)

// The closed-form model must agree with the event simulation within a
// modest tolerance across the experiment space — this is the
// validation the paper's reference [15] performs between its model
// and measurements.
func TestAnalyticMatchesRun(t *testing.T) {
	w := paperWorkload(128)
	for _, p := range []int{16, 32, 64} {
		for l := 1; l <= p; l *= 2 {
			cfg := Config{Machine: RWCP(), Work: w, P: p, L: l}
			sim, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			model, err := Analytic(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(sim.Overall.Seconds()-model.Overall.Seconds()) / sim.Overall.Seconds()
			if rel > 0.15 {
				t.Errorf("P=%d L=%d: model %.1fs vs sim %.1fs (%.0f%% off)",
					p, l, model.Overall.Seconds(), sim.Overall.Seconds(), rel*100)
			}
		}
	}
}

// The model must rank partition choices like the simulation does at
// the optimum (both pick an interior L).
func TestAnalyticOptimumInterior(t *testing.T) {
	w := paperWorkload(128)
	const p = 32
	best, bestL := math.Inf(1), 0
	for l := 1; l <= p; l *= 2 {
		r, err := Analytic(Config{Machine: RWCP(), Work: w, P: p, L: l})
		if err != nil {
			t.Fatal(err)
		}
		if s := r.Overall.Seconds(); s < best {
			best, bestL = s, l
		}
	}
	if bestL == 1 || bestL == p {
		t.Fatalf("analytic optimum at boundary L=%d", bestL)
	}
}

func TestAnalyticValidation(t *testing.T) {
	if _, err := Analytic(Config{Machine: RWCP(), Work: paperWorkload(4), P: 7, L: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAnalyticParallelInput(t *testing.T) {
	w := paperWorkload(64)
	serial, err := Analytic(Config{Machine: RWCP(), Work: w, P: 32, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analytic(Config{Machine: RWCP(), Work: w, P: 32, L: 4, ParallelInput: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.Overall > serial.Overall {
		t.Fatalf("parallel input worse in model: %v > %v", par.Overall, serial.Overall)
	}
}
