package sim

import (
	"strings"
	"testing"
)

func TestGroupFailureSkipsSteps(t *testing.T) {
	base := Config{Machine: RWCP(), Work: paperWorkload(6), P: 8, L: 2}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Failures = []GroupFailure{{Group: 0, AtStep: 2}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 owns steps 0,2,4; it dies at step 2, so 2 and 4 are lost.
	if res.Frames != 4 || res.FailedSteps != 2 {
		t.Fatalf("Frames=%d FailedSteps=%d, want 4/2", res.Frames, res.FailedSteps)
	}
	for _, s := range []int{2, 4} {
		if !res.Trace[s].Failed {
			t.Errorf("step %d not marked failed", s)
		}
	}
	for _, s := range []int{0, 1, 3, 5} {
		if res.Trace[s].Failed {
			t.Errorf("step %d wrongly failed", s)
		}
	}
	// Losing work never makes the run longer.
	if res.Overall > healthy.Overall {
		t.Errorf("failed run overall %v > healthy %v", res.Overall, healthy.Overall)
	}
	if res.StartupLatency <= 0 {
		t.Errorf("startup = %v", res.StartupLatency)
	}
	if g := GanttString(res.Trace, 40); !strings.Contains(g, "group failed") {
		t.Errorf("gantt does not show the failure:\n%s", g)
	}
}

func TestGroupFailureValidation(t *testing.T) {
	cfg := Config{Machine: RWCP(), Work: paperWorkload(4), P: 8, L: 2,
		Failures: []GroupFailure{{Group: 2, AtStep: 0}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range failure group accepted")
	}
	cfg.Failures = []GroupFailure{{Group: 0, AtStep: -1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative failure step accepted")
	}
}
