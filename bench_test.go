// Package repro's root benchmarks regenerate the paper's tables and
// figures under `go test -bench` (quick mode: reduced sizes and
// repetition counts so a full -bench=. pass stays tractable; run
// cmd/paperbench for the paper-scale versions). One benchmark per
// table/figure, as indexed in DESIGN.md.
package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment[T any](b *testing.B, run func(*experiments.Context) (T, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := experiments.New(io.Discard, true)
		if _, err := run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (compressed image sizes for the
// six codecs).
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Table1)
}

// BenchmarkTable2 regenerates Table 2 (frame rates NASA→UCD, X vs
// compression).
func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Table2)
}

// BenchmarkFig6 regenerates Figure 6 (overall time vs partition count
// for P = 16, 32, 64).
func BenchmarkFig6(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Fig6)
}

// BenchmarkFig7 regenerates Figure 7 (start-up latency, overall time,
// inter-frame delay vs partitions at P = 32).
func BenchmarkFig7(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Fig7)
}

// BenchmarkFig8 regenerates Figure 8 (per-frame transfer time
// NASA→UCD, X vs compression).
func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Fig8)
}

// BenchmarkFig9 regenerates Figure 9 (render vs display breakdown on
// 16 O2K processors).
func BenchmarkFig9(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Fig9)
}

// BenchmarkFig10 regenerates Figure 10 (decompression time vs number
// of parallel-compression pieces).
func BenchmarkFig10(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Fig10)
}

// BenchmarkFig11 regenerates Figure 11 (per-frame display time
// RWCP Japan→UCD, X vs daemon).
func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Fig11)
}

// BenchmarkDatasets regenerates the §6 dataset contrasts (vortex
// transport-bound, mixing render-bound).
func BenchmarkDatasets(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Datasets)
}

// BenchmarkHybrid regenerates the hybrid parallel-compression sweep
// (extension experiment).
func BenchmarkHybrid(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Hybrid)
}

// BenchmarkPerf regenerates the multicore hot-path measurements
// (render scaling, pooled-path allocs/frame, codec throughput).
func BenchmarkPerf(b *testing.B) {
	benchExperiment(b, (*experiments.Context).Perf)
}
