// Acceleration: the §7.1 "preprocessing hints" extensions in action.
// Renders a short jet animation three ways and compares the work done:
//
//  1. plain ray casting,
//  2. with macrocell empty-space skipping (identical images),
//  3. with differential (temporal-reuse) rendering on a
//     localized-change variant of the data (identical images).
//
// go run ./examples/acceleration
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/accel"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/temporal"
	"repro/internal/tf"
	"repro/internal/volio"
)

func main() {
	const (
		steps = 4
		size  = 192
	)
	store := volio.NewGenStore(datagen.NewJetScaled(0.4, 40))
	tfn := tf.Jet()
	cam := (*render.Camera)(nil)

	table := metrics.NewTable("mode", "time", "samples", "skipped/reused")

	// 1. Plain.
	var plainTime time.Duration
	var plainSamples int
	for s := 0; s < steps; s++ {
		v, err := store.Fetch(20 + s)
		if err != nil {
			log.Fatal(err)
		}
		if cam == nil {
			cam, err = render.NewOrbitCamera(v.Dims, 0.6, 0.35, 1.3)
			if err != nil {
				log.Fatal(err)
			}
		}
		t0 := time.Now()
		_, st, err := render.Render(v, cam, tfn, render.DefaultOptions(), size, size)
		if err != nil {
			log.Fatal(err)
		}
		plainTime += time.Since(t0)
		plainSamples += st.Samples
	}
	table.Row("plain", plainTime.Round(time.Millisecond).String(), fmt.Sprint(plainSamples), "-")

	// 2. Empty-space skipping.
	var accelTime time.Duration
	var accelSamples, skipped int
	for s := 0; s < steps; s++ {
		v, err := store.Fetch(20 + s)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		grid, err := accel.Build(v, [3]int{0, 0, 0}, v.Normalize, 0)
		if err != nil {
			log.Fatal(err)
		}
		opt := render.DefaultOptions()
		opt.Accel = grid
		_, st, err := render.Render(v, cam, tfn, opt, size, size)
		if err != nil {
			log.Fatal(err)
		}
		accelTime += time.Since(t0)
		accelSamples += st.Samples
		skipped += st.Skipped
	}
	table.Row("empty-space skip", accelTime.Round(time.Millisecond).String(),
		fmt.Sprint(accelSamples), fmt.Sprintf("%d skipped", skipped))

	// 3. Differential rendering across the animation.
	cache := temporal.New()
	var diffTime time.Duration
	var diffSamples, reused int
	for s := 0; s < steps; s++ {
		v, err := store.Fetch(20 + s)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		_, st, err := cache.Render(v, cam, tfn, render.DefaultOptions(), size, size)
		if err != nil {
			log.Fatal(err)
		}
		diffTime += time.Since(t0)
		diffSamples += st.Samples
		reused += st.ReusedPixels
	}
	table.Row("differential", diffTime.Round(time.Millisecond).String(),
		fmt.Sprint(diffSamples), fmt.Sprintf("%d px reused", reused))

	fmt.Printf("%d frames of the jet at %dx%d:\n\n%s\n", steps, size, size, table.String())
	fmt.Println("all three modes produce identical images (see internal/render and")
	fmt.Println("internal/temporal tests for the bit-exactness proofs)")
}
