// Remoteviz: the complete end-to-end system of the paper in one
// process — display daemon, parallel render server (8 nodes, 2
// pipeline groups, JPEG+LZO parallel compression), and a viewer, with
// the server's connection shaped to the NASA-Ames-to-UC-Davis link
// profile. Mid-stream it pushes a colormap change through the
// user-control path, then reports the achieved frame rate.
//
//	go run ./examples/remoteviz
package main

import (
	"fmt"
	"log"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/tf"
	"repro/internal/volio"
	"repro/internal/wan"
)

func main() {
	const steps = 12
	store := volio.NewGenStore(datagen.NewJetScaled(0.5, steps))

	sess, err := core.StartSession(store, core.SessionOptions{
		Server: core.ServerOptions{
			P: 8, L: 2,
			ImageW: 256, ImageH: 256,
			Codec:  "jpeg+lzo",
			Pieces: 4, // parallel compression: 4 sub-images per frame
			TF:     tf.Jet(),
			Steps:  steps,
		},
		Link: wan.NASAUCD(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	fmt.Printf("streaming %d frames over the %s link profile...\n", steps, "nasa-ucd")
	n := 0
	for fr := range sess.Viewer.Frames() {
		n++
		fmt.Printf("frame %2d: %d compressed bytes in %d pieces, decode %v\n",
			fr.ID, fr.Bytes, fr.Pieces, fr.DecodeTime)
		if n == steps/2 {
			// User control: switch the colormap mid-stream. Frames in
			// flight are unaffected; later ones pick it up.
			fmt.Println("-> sending colormap change (remote callback)")
			if err := sess.Viewer.SendControl(control.ColormapMsg(tf.Vortex())); err != nil {
				log.Fatal(err)
			}
		}
		if n == steps {
			break
		}
	}
	if err := sess.Wait(); err != nil {
		log.Fatal(err)
	}
	st := sess.Viewer.Stats()
	fmt.Printf("displayed %d frames at %.2f fps (%d bytes total)\n",
		st.Frames, st.FPS(), st.Bytes)
}
