// Batchpipeline: batch-mode rendering of a time series with processor
// grouping, the experiment behind the paper's Figures 6 and 7 — run
// for real on goroutine-backed nodes. For each valid partition count L
// of an 8-node machine it renders the full sequence and reports the
// three performance metrics of §3: start-up latency, overall execution
// time, and inter-frame delay.
//
//	go run ./examples/batchpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/tf"
	"repro/internal/volio"
)

func main() {
	const (
		p     = 8
		steps = 16
		size  = 128
	)
	fmt.Printf("batch rendering %d steps of the jet dataset on %d nodes, %dx%d\n\n",
		steps, p, size, size)

	table := metrics.NewTable("L", "G", "startup(s)", "overall(s)", "interframe(s)")
	for _, l := range pipeline.GroupSizes(p) {
		store := volio.NewGenStore(datagen.NewJetScaled(0.35, steps))
		m, err := pipeline.Run(store, pipeline.Options{
			P: p, L: l,
			ImageW: size, ImageH: size,
			TF: tf.Jet(),
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		table.Row(
			fmt.Sprint(l), fmt.Sprint(p/l),
			fmt.Sprintf("%.3f", m.StartupLatency.Seconds()),
			fmt.Sprintf("%.3f", m.Overall.Seconds()),
			fmt.Sprintf("%.3f", m.InterFrameDelay.Seconds()),
		)
	}
	fmt.Print(table.String())
	fmt.Println("\nNote: on a single-CPU host all L behave alike in wall-clock terms;")
	fmt.Println("cmd/paperbench -exp fig6 runs the calibrated cluster-scale version.")
}
