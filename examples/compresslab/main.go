// Compresslab: compares the six image codecs of the paper's Table 1
// on real rendered frames from all three datasets, reporting size,
// encode/decode times and PSNR — the data a deployment would use to
// pick a codec for a given link.
//
//	go run ./examples/compresslab
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/compress/codecs"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/tf"
)

func main() {
	const size = 256
	all, err := codecs.All()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"jet", "vortex"} {
		gen, err := datagen.ByName(name, 0.5, 10)
		if err != nil {
			log.Fatal(err)
		}
		v, err := gen.Step(5)
		if err != nil {
			log.Fatal(err)
		}
		tfn, err := tf.Preset(name)
		if err != nil {
			log.Fatal(err)
		}
		cam, err := render.NewOrbitCamera(v.Dims, 0.6, 0.35, 1.2)
		if err != nil {
			log.Fatal(err)
		}
		im, _, err := render.Render(v, cam, tfn, render.DefaultOptions(), size, size)
		if err != nil {
			log.Fatal(err)
		}
		frame := im.ToFrame(0)

		fmt.Printf("dataset %s, %dx%d frame (%d raw bytes)\n", name, size, size, len(frame.Pix))
		t := metrics.NewTable("codec", "bytes", "ratio", "encode", "decode", "psnr(dB)")
		for _, c := range all {
			t0 := time.Now()
			data, err := c.EncodeFrame(frame)
			if err != nil {
				log.Fatal(err)
			}
			enc := time.Since(t0)
			t0 = time.Now()
			back, err := c.DecodeFrame(data)
			if err != nil {
				log.Fatal(err)
			}
			dec := time.Since(t0)
			psnr, err := img.PSNR(frame, back)
			if err != nil {
				log.Fatal(err)
			}
			ps := "inf"
			if !math.IsInf(psnr, 1) {
				ps = fmt.Sprintf("%.1f", psnr)
			}
			t.Row(c.Name(), fmt.Sprint(len(data)),
				fmt.Sprintf("%.4f", float64(len(data))/float64(len(frame.Pix))),
				enc.Round(time.Microsecond).String(), dec.Round(time.Microsecond).String(), ps)
		}
		fmt.Print(t.String())
		fmt.Println()
	}
}
