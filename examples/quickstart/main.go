// Quickstart: synthesize one time step of the turbulent-jet dataset,
// ray-cast it with the jet transfer function, and save a PNG.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/render"
	"repro/internal/tf"
)

func main() {
	// One time step of the paper's turbulent jet (129x129x104 scalar
	// vorticity), synthesized procedurally.
	gen := datagen.NewJet()
	vol, err := gen.Step(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume: %v, value range [%.3f, %.3f]\n", vol.Dims, vol.Min, vol.Max)

	// Orbit camera looking at the volume center.
	cam, err := render.NewOrbitCamera(vol.Dims, 0.6, 0.35, 1.2)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	im, stats, err := render.Render(vol, cam, tf.Jet(), render.DefaultOptions(), 512, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered 512x512 in %v (%d rays, %d samples)\n",
		time.Since(start), stats.Rays, stats.Samples)

	frame := im.ToFrame(0) // composite over black
	if err := frame.SavePNG("quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")
}
