// Package repro reproduces Ma & Camp, "High Performance Visualization
// of Time-Varying Volume Data over a Wide-Area Network" (SC 2000): a
// parallel pipelined volume renderer with processor grouping,
// binary-swap compositing, a compression-based image-transport
// framework (display daemon + renderer/display interfaces), and the
// paper's full evaluation regenerated as benchmarks.
//
// The root package carries the repository-level benchmark harness
// (bench_test.go, one benchmark per table/figure) and the end-to-end
// CLI integration test; the system itself lives under internal/ (see
// DESIGN.md for the inventory) with executables under cmd/ and
// runnable examples under examples/.
package repro
