package repro

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandLineIntegration builds the real binaries and runs the
// full deployment the README describes: displaydaemon + renderserver +
// viewer as separate processes over loopback TCP, saving received
// frames to disk. Skipped with -short.
func TestCommandLineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"displaydaemon", "renderserver", "viewer", "volgen"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}

	// Pick a free port for the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(bins["displaydaemon"], "-listen", addr)
	daemonOut := &strings.Builder{}
	daemon.Stdout, daemon.Stderr = daemonOut, daemonOut
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	if err := waitListening(addr, 10*time.Second); err != nil {
		t.Fatalf("daemon never listened: %v\n%s", err, daemonOut)
	}

	// volgen writes a small dataset file; renderserver streams it.
	dataset := filepath.Join(dir, "jet.tvv")
	if b, err := exec.Command(bins["volgen"], "-dataset", "jet", "-scale", "0.12", "-steps", "3", "-o", dataset).CombinedOutput(); err != nil {
		t.Fatalf("volgen: %v\n%s", err, b)
	}

	server := exec.Command(bins["renderserver"],
		"-daemon", addr, "-dataset", dataset, "-steps", "3",
		"-p", "2", "-l", "1", "-size", "64", "-codec", "jpeg+lzo", "-loop")
	serverOut := &strings.Builder{}
	server.Stdout, server.Stderr = serverOut, serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()

	frames := filepath.Join(dir, "frames")
	viewer := exec.Command(bins["viewer"], "-daemon", addr, "-frames", "3", "-save", frames)
	viewerBytes, err := viewer.CombinedOutput()
	if err != nil {
		t.Fatalf("viewer: %v\nviewer: %s\nserver: %s\ndaemon: %s", err, viewerBytes, serverOut, daemonOut)
	}
	if !strings.Contains(string(viewerBytes), "received 3 frames") {
		t.Fatalf("viewer output:\n%s", viewerBytes)
	}
	saved, err := filepath.Glob(filepath.Join(frames, "*.png"))
	if err != nil || len(saved) == 0 {
		t.Fatalf("no PNG frames saved (%v): %v", err, saved)
	}
	for _, p := range saved {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("bad frame file %s: %v", p, err)
		}
	}
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s", addr)
}
