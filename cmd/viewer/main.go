// Command viewer is the display client: it connects to the display
// daemon, decompresses and assembles incoming frames, reports the
// displayed frame rate, optionally saves frames as PNGs, and can send
// user-control messages to the render server.
//
//	viewer -daemon 127.0.0.1:7420 -save frames/ -frames 30
//	viewer -daemon 127.0.0.1:7420 -colormap vortex -codec jpeg+bzip
//	viewer -daemon 127.0.0.1:7420 -link japan-ucd   # emulated WAN downlink
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/control"
	"repro/internal/display"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/tf"
	"repro/internal/transport"
	"repro/internal/wan"
)

func main() {
	daemon := flag.String("daemon", "127.0.0.1:7420", "display daemon address")
	save := flag.String("save", "", "directory to write received frames as PNG")
	frames := flag.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	colormap := flag.String("colormap", "", "send a colormap change (jet, vortex, mixing, gray)")
	codec := flag.String("codec", "", "send a codec change")
	azimuth := flag.Float64("azimuth", 0, "send a view change with this azimuth (rad)")
	elevation := flag.Float64("elevation", 0, "view elevation (rad)")
	distance := flag.Float64("distance", 0, "view distance (x volume diagonal); 0 = no view change")
	stride := flag.Int("stride", 0, "send a preview-mode stride (render every k-th step; 0 = no change)")
	noack := flag.Bool("noack", false, "do not report frame receive timestamps (disables the adaptive daemon's feedback)")
	reconnect := flag.Bool("reconnect", false, "survive daemon restarts: auto-redial with exponential backoff and resume the frame stream")
	heartbeat := flag.Duration("heartbeat", 0, "with -reconnect: ping the daemon on this interval and redial after 3x of inbound silence (0 = off)")
	link := flag.String("link", "", "emulate receiving over a WAN profile (nasa-ucd, japan-ucd, lan); pace reads so the daemon sees that downlink")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/status on this address")
	flag.Parse()

	var wrap func(net.Conn) net.Conn
	if *link != "" {
		prof, err := wan.ByName(*link)
		if err != nil {
			fatal(err)
		}
		wrap = func(c net.Conn) net.Conn { return wan.ShapeReads(c, prof) }
	}
	var ep transport.Link
	var sess *transport.Session
	if *reconnect {
		var err error
		sess, err = transport.NewSession(transport.SessionConfig{
			Role:      transport.RoleDisplay,
			Addr:      *daemon,
			Wrap:      wrap,
			Retry:     transport.DefaultRetry(),
			Heartbeat: *heartbeat,
			Logf:      log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		ep = sess
	} else {
		e, err := transport.Dial(*daemon, transport.RoleDisplay, wrap)
		if err != nil {
			fatal(err)
		}
		ep = e
	}
	v := display.NewViewer(ep)
	v.SetAutoAck(!*noack)
	defer v.Close()

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.InstrumentCodecs(reg)
		prov := provenance.NewLog("viewer", 0)
		v.SetProvenance(prov, *daemon)
		reg.CounterFunc("viewer_frames_total", "Frames displayed.", func() int64 {
			st := v.Stats()
			return int64(st.Frames)
		})
		reg.CounterFunc("viewer_bytes_total", "Compressed payload bytes received.", func() int64 {
			st := v.Stats()
			return st.Bytes
		})
		reg.GaugeFunc("viewer_fps", "Average displayed frame rate.", func() float64 {
			st := v.Stats()
			return st.FPS()
		})
		reg.GaugeFunc("viewer_decode_seconds_total", "Cumulative frame decode time in seconds.", func() float64 {
			st := v.Stats()
			return st.DecodeTime.Seconds()
		})
		wd := guard.NewWatchdog(time.Second, nil)
		wd.Register("viewer", 5*time.Second, func() { _ = v.Stats() })
		defer wd.Close()
		dbg, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Component: "viewer",
			Registry:  reg,
			Frames:    prov.Handler(),
			Status: func() any {
				status := map[string]any{"viewer": v.Stats(), "watchdog": wd.Status()}
				if sess != nil {
					status["link"] = sess.State()
				}
				return status
			},
		})
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	if *colormap != "" {
		t, err := tf.Preset(*colormap)
		if err != nil {
			fatal(err)
		}
		if err := v.SendControl(control.ColormapMsg(t)); err != nil {
			fatal(err)
		}
	}
	if *codec != "" {
		if err := v.SendControl(control.CodecMsg(*codec)); err != nil {
			fatal(err)
		}
	}
	if *distance > 0 {
		ev := control.ViewEvent{Azimuth: *azimuth, Elevation: *elevation, Distance: *distance}
		if err := v.SendControl(control.ViewMsg(ev)); err != nil {
			fatal(err)
		}
	}
	if *stride > 0 {
		if err := v.SendControl(control.StrideMsg(*stride)); err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		if err := os.MkdirAll(*save, 0o755); err != nil {
			fatal(err)
		}
	}

	n := 0
	for fr := range v.Frames() {
		n++
		fmt.Printf("frame %4d: %dx%d, %6d bytes in %d pieces, decode %v\n",
			fr.ID, fr.Image.W, fr.Image.H, fr.Bytes, fr.Pieces, fr.DecodeTime)
		if *save != "" {
			path := filepath.Join(*save, fmt.Sprintf("frame_%05d.png", fr.ID))
			if err := fr.Image.SavePNG(path); err != nil {
				fatal(err)
			}
		}
		if *frames > 0 && n >= *frames {
			break
		}
	}
	if err := v.Err(); err != nil {
		fatal(err)
	}
	st := v.Stats()
	fmt.Printf("received %d frames (%.2f fps, %d bytes, decode total %v)\n",
		st.Frames, st.FPS(), st.Bytes, st.DecodeTime)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "viewer:", err)
	os.Exit(1)
}
