// Command renderserver runs the parallel render server: it renders a
// time-varying dataset with P simulated processor nodes in L pipeline
// groups, compresses the composited images, and streams them to a
// display daemon. User-control messages (view, colormap, codec,
// start/stop) arrive back through the daemon as remote callbacks.
//
//	renderserver -daemon 127.0.0.1:7420 -dataset jet -p 8 -l 2 \
//	    -size 256 -codec jpeg+lzo -link nasa-ucd -loop
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/tf"
	"repro/internal/transport"
	"repro/internal/volio"
	"repro/internal/wan"
)

func main() {
	daemon := flag.String("daemon", "127.0.0.1:7420", "display daemon address")
	dataset := flag.String("dataset", "jet", "dataset: jet, vortex, mixing, or a .tvv file path")
	scale := flag.Float64("scale", 0.5, "generator grid scale (ignored for files)")
	steps := flag.Int("steps", 30, "time steps per pass (0 = all)")
	p := flag.Int("p", 8, "processor nodes")
	l := flag.Int("l", 2, "pipeline groups")
	size := flag.Int("size", 256, "square image size")
	codec := flag.String("codec", "jpeg+lzo", "initial codec (raw = X baseline)")
	pieces := flag.Int("pieces", 1, "compressed sub-images per frame (parallel compression)")
	link := flag.String("link", "", "shape the daemon connection: nasa-ucd, japan-ucd, lan")
	loop := flag.Bool("loop", false, "repeat the animation until interrupted")
	region := flag.Bool("regioninput", false, "parallel I/O: each node reads its own brick (§7.1)")
	nodeLinks := flag.Bool("nodelinks", false, "one daemon connection per compressed piece (Figure 2)")
	accelFlag := flag.Bool("accel", false, "per-brick empty-space skipping (identical images, fewer samples)")
	reconnect := flag.Bool("reconnect", false, "survive daemon restarts: auto-redial with exponential backoff, dropping frames while the link is down")
	heartbeat := flag.Duration("heartbeat", 0, "with -reconnect: ping the daemon on this interval and redial after 3x of inbound silence (0 = off)")
	breakerN := flag.Int("breaker", 0, "with -reconnect: open a circuit after this many consecutive failed redials, skipping the network until a half-open probe succeeds (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/status and /debug/trace on this address")
	flag.Parse()

	store, name, err := openStore(*dataset, *scale, *steps)
	if err != nil {
		fatal(err)
	}
	tfn, err := tf.Preset(name)
	if err != nil {
		tfn = tf.Jet()
	}
	opt := core.ServerOptions{
		DaemonAddr: *daemon,
		P:          *p, L: *l,
		ImageW: *size, ImageH: *size,
		Codec: *codec, Pieces: *pieces,
		TF: tfn, Steps: *steps, Loop: *loop,
		RegionInput: *region, NodeLinks: *nodeLinks, Accel: *accelFlag,
	}
	var br *guard.Breaker
	if *reconnect {
		rp := transport.DefaultRetry()
		opt.Reconnect = &rp
		opt.Heartbeat = *heartbeat
		if *breakerN > 0 {
			br = guard.NewBreaker(guard.BreakerConfig{Threshold: *breakerN})
			opt.Breaker = br
		}
	} else if *breakerN > 0 {
		fatal(fmt.Errorf("-breaker requires -reconnect"))
	}
	if *link != "" {
		prof, err := wan.ByName(*link)
		if err != nil {
			fatal(err)
		}
		opt.Wrap = func(c net.Conn) net.Conn { return wan.Shape(c, prof) }
	}
	if *debugAddr != "" {
		opt.Metrics = obs.NewRegistry()
		opt.Trace = obs.NewTracer(obs.WallClock(), obs.DefaultTraceCapacity)
		opt.Prov = provenance.NewLog("renderserver", 0)
		obs.InstrumentCodecs(opt.Metrics)
		obs.InstrumentRender(opt.Metrics)
		obs.InstrumentAllocs(opt.Metrics)
	}
	srv, err := core.NewServer(store, opt)
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		st := srv.Stats()
		wd := guard.NewWatchdog(time.Second, nil)
		wd.Register("daemon-link", 5*time.Second, func() { _ = srv.LinkState() })
		defer wd.Close()
		dbg, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Component: "renderserver",
			Registry:  opt.Metrics,
			Tracer:    opt.Trace,
			Frames:    opt.Prov.Handler(),
			Status: func() any {
				status := map[string]any{
					"frames_sent": st.FramesSent.Load(),
					"bytes_sent":  st.BytesSent.Load(),
					"watchdog":    wd.Status(),
				}
				if *reconnect {
					status["frames_dropped"] = st.FramesDropped.Load()
					status["link"] = srv.LinkState()
				}
				if br != nil {
					status["breaker"] = br.StateName()
				}
				return status
			},
		})
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/metrics\n", dbg.Addr())
	}
	fmt.Printf("render server: %s %v, P=%d L=%d, %dx%d, codec %s -> %s\n",
		name, store.Dims(), *p, *l, *size, *size, *codec, *daemon)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		srv.Stop()
	}()
	if err := srv.Run(); err != nil {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("sent %d frames, %d compressed bytes\n", st.FramesSent.Load(), st.BytesSent.Load())
}

// openStore resolves a dataset name or .tvv path into a Store.
func openStore(dataset string, scale float64, steps int) (volio.Store, string, error) {
	if _, err := os.Stat(dataset); err == nil {
		r, err := volio.Open(dataset)
		if err != nil {
			return nil, "", err
		}
		return volio.FileStore{R: r}, "jet", nil
	}
	gen, err := datagen.ByName(dataset, scale, steps)
	if err != nil {
		return nil, "", err
	}
	return volio.NewGenStore(gen), dataset, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "renderserver:", err)
	os.Exit(1)
}
