// Command paperbench regenerates the paper's tables and figures.
//
//	paperbench                     # run every experiment at paper scale
//	paperbench -exp table1         # one experiment
//	paperbench -quick              # reduced sizes/links for a fast pass
//	paperbench -json results.json  # also write machine-readable results
//	paperbench -exp pipeline -trace out.json
//	                               # traced pipeline run; open out.json
//	                               # in a Perfetto/chrome://tracing viewer
//
// Experiments: table1, table2, fig6, fig7, fig8, fig9, fig10, fig11,
// datasets, hybrid, trace, pipeline, adaptive, codec, faults, perf,
// relay, status, overload, dfb, all.
//
//	paperbench -exp dfb -json BENCH_dfb.json
//	                               # tile-ownership (DFB) vs binary-swap
//	                               # compositing: live bit-identity +
//	                               # bytes, streaming overlap, and the
//	                               # 64-512 node critical-path model;
//	                               # CI gates on bit_identical and the
//	                               # 256-node overlap/critical-path row
//
//	paperbench -exp perf -bench-out BENCH_render.json
//	                               # multicore hot-path benchmark; the
//	                               # JSON feeds cmd/benchdiff in CI
//	paperbench -exp status -trace merged.json -json BENCH_status.json
//	                               # loopback relay tree with one
//	                               # impaired link; the provenance
//	                               # collector must attribute it
//	paperbench -exp codec -json BENCH_codec.json
//	                               # compression-ladder evaluation:
//	                               # ratio / throughput / error bound
//	                               # per rung, jls-vs-lzo/bzip
//	                               # contrasts, progressive preview
//	                               # cost on the Japan link; CI gates
//	                               # on the acceptance booleans
//	paperbench -exp overload -json BENCH_overload.json
//	                               # chaos soak: client flood + faults
//	                               # under a small memory budget; CI
//	                               # gates on overload.passed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1,table2,fig6,fig7,fig8,fig9,fig10,fig11,datasets,hybrid,trace,pipeline,adaptive,codec,faults,perf,relay,status,overload,dfb,all)")
	quick := flag.Bool("quick", false, "reduced sizes and accelerated links")
	jsonPath := flag.String("json", "", "write results as JSON (experiment id -> values) to this file")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON from tracing experiments to this file")
	benchOut := flag.String("bench-out", "", "write the perf experiment's result (BENCH_render.json format) to this file")
	flag.Parse()

	ctx := experiments.New(os.Stdout, *quick)
	ctx.TracePath = *tracePath
	runners := map[string]func() (any, error){
		"table1":   wrap(ctx.Table1),
		"table2":   wrap(ctx.Table2),
		"fig6":     wrap(ctx.Fig6),
		"fig7":     wrap(ctx.Fig7),
		"fig8":     wrap(ctx.Fig8),
		"fig9":     wrap(ctx.Fig9),
		"fig10":    wrap(ctx.Fig10),
		"fig11":    wrap(ctx.Fig11),
		"datasets": wrap(ctx.Datasets),
		"hybrid":   wrap(ctx.Hybrid),
		"trace":    wrap(ctx.Trace),
		"pipeline": wrap(ctx.Pipeline),
		"adaptive": wrap(ctx.Adaptive),
		"codec":    wrap(ctx.Codec),
		"faults":   wrap(ctx.Faults),
		"perf":     wrap(ctx.Perf),
		"relay":    wrap(ctx.Relay),
		"status":   wrap(ctx.Status),
		"overload": wrap(ctx.Overload),
		"dfb":      wrap(ctx.DFB),
	}
	order := []string{"table1", "fig6", "fig7", "fig8", "table2", "fig9", "fig10", "fig11", "datasets", "hybrid", "trace", "pipeline", "adaptive", "codec", "faults", "perf", "relay", "status", "overload", "dfb"}

	var todo []string
	switch *exp {
	case "all":
		todo = order
	default:
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (have %s, all)\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		todo = []string{*exp}
	}
	results := map[string]any{}
	for _, name := range todo {
		res, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		results[name] = res
	}
	if *benchOut != "" {
		res, ok := results["perf"]
		if !ok {
			fmt.Fprintln(os.Stderr, "paperbench: -bench-out requires the perf experiment (use -exp perf or -exp all)")
			os.Exit(2)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: encode bench result: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: write %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: encode results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// wrap adapts the typed experiment runners to a uniform signature that
// preserves the result for -json output.
func wrap[T any](f func() (T, error)) func() (any, error) {
	return func() (any, error) {
		res, err := f()
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}
