// Command paperbench regenerates the paper's tables and figures.
//
//	paperbench                 # run every experiment at paper scale
//	paperbench -exp table1     # one experiment
//	paperbench -quick          # reduced sizes/links for a fast pass
//
// Experiments: table1, table2, fig6, fig7, fig8, fig9, fig10, fig11,
// datasets, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1,table2,fig6,fig7,fig8,fig9,fig10,fig11,datasets,hybrid,trace,all)")
	quick := flag.Bool("quick", false, "reduced sizes and accelerated links")
	flag.Parse()

	ctx := experiments.New(os.Stdout, *quick)
	runners := map[string]func() error{
		"table1":   wrap(ctx.Table1),
		"table2":   wrap(ctx.Table2),
		"fig6":     wrap(ctx.Fig6),
		"fig7":     wrap(ctx.Fig7),
		"fig8":     wrap(ctx.Fig8),
		"fig9":     wrap(ctx.Fig9),
		"fig10":    wrap(ctx.Fig10),
		"fig11":    wrap(ctx.Fig11),
		"datasets": wrap(ctx.Datasets),
		"hybrid":   wrap(ctx.Hybrid),
		"trace":    wrap(ctx.Trace),
	}
	order := []string{"table1", "fig6", "fig7", "fig8", "table2", "fig9", "fig10", "fig11", "datasets", "hybrid", "trace"}

	var todo []string
	switch *exp {
	case "all":
		todo = order
	default:
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (have %s, all)\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		todo = []string{*exp}
	}
	for _, name := range todo {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// wrap adapts the typed experiment runners to a uniform signature.
func wrap[T any](f func() (T, error)) func() error {
	return func() error {
		_, err := f()
		return err
	}
}
