// Command benchdiff compares two BENCH_render.json files (the perf
// experiment's output, see `paperbench -exp perf -bench-out`) and
// fails when the current run regresses from the baseline.
//
//	benchdiff -baseline BENCH_render.json -current /tmp/bench.json
//
// Machine-independent metrics — allocations per frame/op — are always
// gated at the tolerance (default 15%). Time-denominated metrics
// (ns/frame, MB/s) vary with the host, so they are reported but only
// gated with -time; CI runs on heterogeneous runners and must not fail
// on hardware noise. The parallel speedup floor (-speedup) is checked
// only when the current run had GOMAXPROCS >= 4, since a speedup
// measurement on fewer cores says nothing about the tile engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_render.json", "committed baseline file")
	currentPath := flag.String("current", "", "bench file from the current build (required)")
	tol := flag.Float64("tol", 0.15, "relative regression tolerance")
	gateTime := flag.Bool("time", false, "also gate time-denominated metrics (same-host comparisons only)")
	speedupFloor := flag.Float64("speedup", 2.0, "minimum speedup at 4 workers (checked only when GOMAXPROCS >= 4)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}

	// A baseline captured on a single-core host (GOMAXPROCS=1, visible
	// as flat worker scaling) carries no information about the tile
	// engine's parallelism: its multi-worker timings are one core
	// time-slicing, not a standard to regress against.
	baseSolo := singleCore(base)
	if baseSolo {
		fmt.Printf("benchdiff: warning: baseline %s was captured at GOMAXPROCS=%d with flat worker scaling (%s); skipping multi-worker timing comparisons\n",
			*baselinePath, base.GOMAXPROCS, scalingSummary(base))
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	// worse reports whether cur regressed beyond tolerance from base
	// for a lower-is-better metric. The +0.75 absolute slack absorbs
	// sub-alloc jitter in fractional malloc counts without masking a
	// genuine extra allocation on the hot path.
	worse := func(curV, baseV float64) bool {
		return curV > baseV*(1+*tol)+0.75
	}

	if worse(cur.RenderAllocsPerFrame, base.RenderAllocsPerFrame) {
		fail("render allocs/frame: %.1f -> %.1f (baseline +%.0f%%)",
			base.RenderAllocsPerFrame, cur.RenderAllocsPerFrame, *tol*100)
	}
	if worse(cur.FramePathAllocsPerFrame, base.FramePathAllocsPerFrame) {
		fail("pooled frame path allocs/frame: %.1f -> %.1f",
			base.FramePathAllocsPerFrame, cur.FramePathAllocsPerFrame)
	}
	baseCodecs := map[string]experiments.PerfCodecPoint{}
	for _, p := range base.Codecs {
		baseCodecs[p.Codec] = p
	}
	var newCodecs []string
	for _, p := range cur.Codecs {
		bp, ok := baseCodecs[p.Codec]
		if !ok {
			// A codec present only in the current run is a new family,
			// not a regression: it enters the baseline when the
			// baseline file is next regenerated.
			newCodecs = append(newCodecs, p.Codec)
			continue
		}
		if worse(p.EncodeAllocsPer, bp.EncodeAllocsPer) {
			fail("codec %s encode allocs/op: %.1f -> %.1f", p.Codec, bp.EncodeAllocsPer, p.EncodeAllocsPer)
		}
		if *gateTime {
			if p.EncodeMBps < bp.EncodeMBps*(1-*tol) {
				fail("codec %s encode throughput: %.1f -> %.1f MB/s", p.Codec, bp.EncodeMBps, p.EncodeMBps)
			}
			if p.DecodeMBps < bp.DecodeMBps*(1-*tol) {
				fail("codec %s decode throughput: %.1f -> %.1f MB/s", p.Codec, bp.DecodeMBps, p.DecodeMBps)
			}
		}
	}
	if *gateTime {
		baseNs := map[int]int64{}
		for _, p := range base.Render {
			baseNs[p.Workers] = p.NsPerFrame
		}
		for _, p := range cur.Render {
			if baseSolo && p.Workers > 1 {
				// Multi-worker baseline numbers from a 1-core capture
				// are not comparable; the 1-worker row still gates.
				continue
			}
			if bNs, ok := baseNs[p.Workers]; ok && float64(p.NsPerFrame) > float64(bNs)*(1+*tol) {
				fail("render ns/frame at %d workers: %d -> %d", p.Workers, bNs, p.NsPerFrame)
			}
		}
	}
	if cur.GOMAXPROCS >= 4 {
		for _, p := range cur.Render {
			if p.Workers == 4 && p.Speedup < *speedupFloor {
				fail("speedup at 4 workers %.2fx below the %.1fx floor (GOMAXPROCS=%d)",
					p.Speedup, *speedupFloor, cur.GOMAXPROCS)
			}
		}
	} else {
		fmt.Printf("benchdiff: GOMAXPROCS=%d, skipping the %dx-at-4-workers speedup gate\n",
			cur.GOMAXPROCS, int(*speedupFloor))
	}

	fmt.Printf("benchdiff: baseline %s vs current %s (tol %.0f%%)\n", *baselinePath, *currentPath, *tol*100)
	if len(newCodecs) > 0 {
		fmt.Printf("  new codecs not in baseline (reported, not gated): %s\n", strings.Join(newCodecs, ", "))
	}
	if baseSolo {
		fmt.Println("  baseline annotated single-core: worker-scaling comparison skipped")
	}
	fmt.Printf("  render allocs/frame %.1f -> %.1f, frame path %.1f -> %.1f\n",
		base.RenderAllocsPerFrame, cur.RenderAllocsPerFrame,
		base.FramePathAllocsPerFrame, cur.FramePathAllocsPerFrame)
	for _, p := range cur.Render {
		fmt.Printf("  render %d workers: %d ns/frame (%.2fx)\n", p.Workers, p.NsPerFrame, p.Speedup)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  - %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// singleCore reports whether a perf capture came from a single-core
// host: GOMAXPROCS recorded as 1, or — for captures predating the
// field — flat worker scaling (no multi-worker point reaching even a
// 1.15x speedup).
func singleCore(res *experiments.PerfResult) bool {
	if res.GOMAXPROCS == 1 {
		return true
	}
	if res.GOMAXPROCS > 1 {
		return false
	}
	multi := false
	for _, p := range res.Render {
		if p.Workers > 1 {
			multi = true
			if p.Speedup >= 1.15 {
				return false
			}
		}
	}
	return multi
}

// scalingSummary renders a capture's worker-scaling curve for the
// single-core warning, e.g. "1w 1.00x, 4w 1.02x".
func scalingSummary(res *experiments.PerfResult) string {
	out := ""
	for i, p := range res.Render {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%dw %.2fx", p.Workers, p.Speedup)
	}
	return out
}

func load(path string) (*experiments.PerfResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res experiments.PerfResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res.Render) == 0 {
		return nil, fmt.Errorf("%s: no render measurements (not a perf result?)", path)
	}
	return &res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
