// Command volgen synthesizes a time-varying volume dataset and writes
// it in the repository's .tvv format, standing in for the mass-storage
// copy of the paper's CFD datasets.
//
//	volgen -dataset jet -scale 0.5 -steps 30 -o jet.tvv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/volio"
)

func main() {
	dataset := flag.String("dataset", "jet", "dataset: jet, vortex, mixing")
	scale := flag.Float64("scale", 1.0, "grid scale in (0,1]; 1 = paper size")
	steps := flag.Int("steps", 0, "time steps (0 = paper count)")
	out := flag.String("o", "", "output file (default <dataset>.tvv)")
	flag.Parse()

	if *out == "" {
		*out = *dataset + ".tvv"
	}
	gen, err := datagen.ByName(*dataset, *scale, *steps)
	if err != nil {
		fatal(err)
	}
	d := gen.Dims()
	fmt.Printf("generating %s: %v x %d steps (%.1f MB) -> %s\n",
		*dataset, d, gen.Steps(), float64(d.Bytes()*int64(gen.Steps()))/(1<<20), *out)
	if err := volio.WriteDataset(*out, gen); err != nil {
		fatal(err)
	}
	fmt.Println("done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volgen:", err)
	os.Exit(1)
}
