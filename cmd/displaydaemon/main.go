// Command displaydaemon runs the paper's display daemon: it relays
// compressed images from render servers to display clients and routes
// user-control messages back.
//
//	displaydaemon -listen 127.0.0.1:7420
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7420", "listen address")
	buffer := flag.Int("buffer", 8, "per-display image buffer depth")
	verbose := flag.Bool("v", false, "log connections and drops")
	flag.Parse()

	d, err := transport.ListenAndServe(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "displaydaemon:", err)
		os.Exit(1)
	}
	d.BufferFrames = *buffer
	if *verbose {
		d.Logf = log.Printf
	}
	fmt.Printf("display daemon listening on %s\n", d.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := d.Stats()
	fmt.Printf("\nforwarded %d images (%d bytes), dropped %d, routed %d controls\n",
		st.ImagesForwarded.Load(), st.BytesForwarded.Load(),
		st.ImagesDropped.Load(), st.ControlsRouted.Load())
	d.Close()
}
