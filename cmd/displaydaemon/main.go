// Command displaydaemon runs the paper's display daemon: it relays
// compressed images from render servers to display clients and routes
// user-control messages back.
//
//	displaydaemon -listen 127.0.0.1:7420
//
// With -adaptive it runs the stream broker instead: frames are decoded
// once and re-encoded per client at an adaptively chosen codec/quality
// (held in an encode-once fan-out cache), and each client's delivery
// is paced to its link with a bounded drop-oldest queue.
//
//	displaydaemon -listen 127.0.0.1:7420 -adaptive -target 200ms
//
// With -relay-parent the daemon joins a relay tree as an edge or
// interior node: it consumes frames from the parent daemon like a
// display client (acking frames so the parent's estimator sees this
// link) and re-serves them through its own adaptive broker, encoding
// once per distinct downstream operating point. If the parent dies the
// node re-parents to the next address in the chain (-relay-fallback,
// repeatable) with bounded backoff, deduplicating any frames the new
// parent replays.
//
//	displaydaemon -listen :7421 -relay-parent render-site:7420 \
//	    -relay-fallback render-site:7419 -relay-name edge-tokyo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/relay"
	"repro/internal/stream"
	"repro/internal/transport"
)

// stringList collects a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7420", "listen address")
	buffer := flag.Int("buffer", 8, "per-display image buffer depth (plain mode)")
	heartbeat := flag.Duration("heartbeat", 0, "ping CRC-capable peers on this interval and evict after -peer-timeout of silence (plain mode, 0 = off)")
	peerTimeout := flag.Duration("peer-timeout", 0, "silence threshold for evicting a dead peer (0 = 3x -heartbeat)")
	adaptive := flag.Bool("adaptive", false, "run the adaptive stream broker (per-client rate control)")
	target := flag.Duration("target", 200*time.Millisecond, "adaptive: target inter-frame delay per client")
	queue := flag.Int("queue", 3, "adaptive: per-client frame queue depth (drop-oldest)")
	cacheFrames := flag.Int("cache", 4, "adaptive: frames retained in the encode fan-out cache")
	memBudget := flag.Int64("mem-budget", 0, "adaptive/relay: frame-memory budget in bytes; over budget the daemon walks the degradation ladder and refuses new displays busy (0 = unguarded)")
	maxClients := flag.Int("max-clients", 0, "adaptive/relay: cap admitted display sessions; excess connections are refused busy with a retry-after hint (0 = unlimited)")
	verbose := flag.Bool("v", false, "log connections and drops")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/status and /debug/trace on this address")
	relayParent := flag.String("relay-parent", "", "run as a relay-tree node attached to this parent daemon")
	relayName := flag.String("relay-name", "", "relay: node name in status output (default the listen address)")
	relayTier := flag.Int("relay-tier", 1, "relay: tier depth in the tree (labels Prometheus series; root daemon = 0)")
	var relayFallbacks stringList
	flag.Var(&relayFallbacks, "relay-fallback", "relay: re-parent target after the parent dies (repeatable; order = preference)")
	flag.Parse()

	gov := newGovernor(*memBudget, *maxClients, *verbose)
	if *relayParent != "" {
		runRelay(*listen, *relayParent, relayFallbacks, *relayName, *relayTier,
			stream.Config{Target: *target, QueueDepth: *queue, CacheFrames: *cacheFrames},
			*heartbeat, *peerTimeout, *verbose, *debugAddr, gov)
		return
	}
	if len(relayFallbacks) > 0 {
		fmt.Fprintln(os.Stderr, "displaydaemon: -relay-fallback requires -relay-parent")
		os.Exit(2)
	}

	if *adaptive {
		runAdaptive(*listen, *target, *queue, *cacheFrames, *verbose, *debugAddr, gov)
		return
	}
	if gov != nil {
		fmt.Fprintln(os.Stderr, "displaydaemon: -mem-budget/-max-clients need -adaptive or -relay-parent")
		os.Exit(2)
	}

	d, err := transport.ListenAndServe(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "displaydaemon:", err)
		os.Exit(1)
	}
	d.SetBufferFrames(*buffer)
	if *heartbeat > 0 {
		d.SetHeartbeat(*heartbeat, *peerTimeout)
	}
	if *verbose {
		d.SetLogf(log.Printf)
	}
	fmt.Printf("display daemon listening on %s\n", d.Addr())
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		d.Instrument(reg)
		prov := provenance.NewLog("displaydaemon", 0)
		d.SetProvenance(prov)
		st := d.Stats()
		wd := newWatchdog(*verbose, map[string]func(){"daemon": func() { _ = d.Health() }})
		defer wd.Close()
		dbg, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Component: "displaydaemon",
			Registry:  reg,
			Frames:    prov.Handler(),
			Status: func() any {
				return map[string]any{
					"mode":             "plain",
					"images_forwarded": st.ImagesForwarded.Load(),
					"images_dropped":   st.ImagesDropped.Load(),
					"bytes_forwarded":  st.BytesForwarded.Load(),
					"controls_routed":  st.ControlsRouted.Load(),
					"acks_received":    st.AcksReceived.Load(),
					"corrupt_dropped":  st.CorruptDropped.Load(),
					"peers_evicted":    st.PeersEvicted.Load(),
					"peers":            d.Health(),
					"watchdog":         wd.Status(),
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "displaydaemon:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := d.Stats()
	fmt.Printf("\nforwarded %d images (%d bytes), dropped %d, routed %d controls, %d acks\n",
		st.ImagesForwarded.Load(), st.BytesForwarded.Load(),
		st.ImagesDropped.Load(), st.ControlsRouted.Load(), st.AcksReceived.Load())
	if n := st.CorruptDropped.Load(); n > 0 {
		fmt.Printf("dropped %d corrupt messages (wire CRC)\n", n)
	}
	if n := st.PeersEvicted.Load(); n > 0 {
		fmt.Printf("evicted %d dead peers (heartbeat)\n", n)
	}
	d.Close()
}

// newGovernor builds the shared resource governor, or nil when both
// knobs are off.
func newGovernor(budget int64, maxClients int, verbose bool) *guard.Governor {
	if budget <= 0 && maxClients <= 0 {
		return nil
	}
	cfg := guard.GovernorConfig{BudgetBytes: budget, MaxClients: maxClients}
	if verbose {
		cfg.Logf = log.Printf
	}
	return guard.NewGovernor(cfg)
}

// newWatchdog starts the per-binary stall watchdog over the given
// probes (name -> lock-acquiring self-check).
func newWatchdog(verbose bool, probes map[string]func()) *guard.Watchdog {
	var logf func(string, ...any)
	if verbose {
		logf = log.Printf
	}
	wd := guard.NewWatchdog(time.Second, logf)
	for name, fn := range probes {
		wd.Register(name, 5*time.Second, fn)
	}
	return wd
}

// runRelay joins a relay tree: downstream adaptive broker on listen,
// upstream session against parent with the fallback chain as re-parent
// targets.
func runRelay(listen, parent string, fallbacks []string, name string, tier int, streamCfg stream.Config, heartbeat, peerTimeout time.Duration, verbose bool, debugAddr string, gov *guard.Governor) {
	if name == "" {
		name = listen
	}
	if verbose {
		streamCfg.Logf = log.Printf
	}
	cfg := relay.Config{
		Name:        name,
		Tier:        tier,
		Parents:     append([]string{parent}, fallbacks...),
		Stream:      streamCfg,
		Heartbeat:   heartbeat,
		PeerTimeout: peerTimeout,
		Prov:        provenance.NewLog(name, 0),
		Guard:       gov,
	}
	if verbose {
		cfg.Logf = log.Printf
	}
	n, err := relay.ListenAndServe(listen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "displaydaemon:", err)
		os.Exit(1)
	}
	fmt.Printf("relay node %q listening on %s, parent chain %v\n", name, n.Addr(), cfg.Parents)
	if debugAddr != "" {
		reg := obs.NewRegistry()
		n.Instrument(reg)
		obs.InstrumentCodecs(reg)
		gov.Instrument(reg)
		wd := newWatchdog(verbose, map[string]func(){"relay": n.Probe})
		defer wd.Close()
		dbg, err := obs.StartDebugServer(debugAddr, obs.DebugConfig{
			Component: "displaydaemon",
			Registry:  reg,
			Frames:    cfg.Prov.Handler(),
			Status: func() any {
				return map[string]any{
					"mode":     "relay",
					"node":     n.Status(),
					"guard":    gov.Status(),
					"watchdog": wd.Status(),
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "displaydaemon:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := n.Status()
	fmt.Printf("\nrelay %q: %d frames in (%d dup-dropped), %d reparents, %d failed parents, %d encodes, %d frames out (%d bytes)\n",
		st.Name, st.FramesIn, st.DupDropped, st.Reparents, st.FailedParents,
		st.Encodes, st.FramesOut, st.BytesOut)
	n.Close()
}

func runAdaptive(listen string, target time.Duration, queue, cacheFrames int, verbose bool, debugAddr string, gov *guard.Governor) {
	cfg := stream.Config{Target: target, QueueDepth: queue, CacheFrames: cacheFrames, Guard: gov}
	if verbose {
		cfg.Logf = log.Printf
	}
	b, err := stream.ListenAndServe(listen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "displaydaemon:", err)
		os.Exit(1)
	}
	fmt.Printf("adaptive stream broker listening on %s (target %v, queue %d, cache %d frames)\n",
		b.Addr(), target, queue, cacheFrames)
	if debugAddr != "" {
		reg := obs.NewRegistry()
		b.Instrument(reg)
		obs.InstrumentCodecs(reg)
		obs.InstrumentAllocs(reg)
		gov.Instrument(reg)
		tr := obs.NewTracer(obs.WallClock(), obs.DefaultTraceCapacity)
		b.SetTracer(tr)
		prov := provenance.NewLog("displaydaemon", 0)
		b.SetProvenance(prov)
		wd := newWatchdog(verbose, map[string]func(){"broker": b.Probe})
		defer wd.Close()
		dbg, err := obs.StartDebugServer(debugAddr, obs.DebugConfig{
			Component: "displaydaemon",
			Registry:  reg,
			Tracer:    tr,
			Frames:    prov.Handler(),
			Status: func() any {
				return map[string]any{
					"mode":     "adaptive",
					"clients":  b.ClientSnapshots(),
					"guard":    gov.Status(),
					"watchdog": wd.Status(),
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "displaydaemon:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := b.Stats()
	cs := b.Cache().Stats()
	fmt.Printf("\nframes in %d, frames out %d (%d bytes), encodes %d, drops %d, cache hit rate %.2f\n",
		st.FramesIn.Load(), st.FramesOut.Load(), st.BytesOut.Load(),
		st.Encodes.Load(), st.Drops.Load(), cs.HitRate())
	for _, c := range b.ClientSnapshots() {
		fmt.Printf("client %d (%s): %d frames, %s, est %.0f KB/s, rtt %v, drops %d\n",
			c.ID, c.Remote, c.FramesSent, c.Point, c.Bandwidth/1e3, c.RTT, c.Drops)
	}
	b.Close()
}
